// Fault model: bit manipulation, AVF profiles, masks, injection spaces,
// sampling statistics, XOR self-inverse property.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fault/avf.h"
#include "fault/bits.h"
#include "fault/mask.h"
#include "fault/space.h"
#include "nn/builders.h"
#include "util/rng.h"

namespace bdlfi::fault {
namespace {

TEST(Bits, FlipIsSelfInverse) {
  const float v = 3.14159f;
  for (int b = 0; b < kBitsPerWord; ++b) {
    EXPECT_EQ(flip_bit(flip_bit(v, b), b), v) << "bit " << b;
  }
}

TEST(Bits, SignBitNegates) {
  EXPECT_EQ(flip_bit(2.5f, kSignBit), -2.5f);
}

TEST(Bits, MantissaLsbIsTiny) {
  const float v = 1.0f;
  const float flipped = flip_bit(v, 0);
  EXPECT_NE(flipped, v);
  EXPECT_NEAR(flipped, v, 1e-6f);
}

TEST(Bits, HighExponentBitIsHuge) {
  const float v = 1.0f;
  const float flipped = flip_bit(v, kExponentHigh);
  // 1.0 has exponent 127 (0111'1111); flipping bit 30 → exponent 255 → inf/nan
  // territory, or at minimum an enormous magnitude change.
  EXPECT_TRUE(!std::isfinite(flipped) || std::abs(flipped) > 1e30f);
}

TEST(Bits, XorWordAppliesMultipleBits) {
  const std::uint32_t word = (1u << 3) | (1u << 20);
  const float v = 7.5f;
  EXPECT_EQ(xor_bits(v, word), flip_bit(flip_bit(v, 3), 20));
}

TEST(Bits, Classification) {
  EXPECT_TRUE(is_sign_bit(31));
  EXPECT_TRUE(is_exponent_bit(23));
  EXPECT_TRUE(is_exponent_bit(30));
  EXPECT_FALSE(is_exponent_bit(31));
  EXPECT_TRUE(is_mantissa_bit(0));
  EXPECT_TRUE(is_mantissa_bit(22));
  EXPECT_FALSE(is_mantissa_bit(23));
}

TEST(Avf, UniformAllBitsEqual) {
  const AvfProfile profile = AvfProfile::uniform();
  for (int b = 0; b < kBitsPerWord; ++b) {
    EXPECT_DOUBLE_EQ(profile.bit_prob(b, 1e-3), 1e-3);
  }
  EXPECT_NEAR(profile.expected_flips_per_word(1e-3), 32e-3, 1e-12);
}

TEST(Avf, MantissaOnlyProtectsExponent) {
  const AvfProfile profile = AvfProfile::mantissa_only();
  EXPECT_DOUBLE_EQ(profile.bit_prob(0, 0.1), 0.1);
  EXPECT_DOUBLE_EQ(profile.bit_prob(23, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(profile.bit_prob(31, 0.1), 0.0);
}

TEST(Avf, ExponentWeightedOrdering) {
  const AvfProfile profile = AvfProfile::exponent_weighted(4.0);
  EXPECT_GT(profile.bit_prob(25, 0.01), profile.bit_prob(5, 0.01));
}

TEST(Avf, ProbClampsToOne) {
  const AvfProfile profile = AvfProfile::uniform();
  EXPECT_DOUBLE_EQ(profile.bit_prob(0, 2.0), 1.0);
}

TEST(FaultMask, ToggleInsertErase) {
  FaultMask mask;
  EXPECT_TRUE(mask.toggle(100));
  EXPECT_TRUE(mask.contains(100));
  EXPECT_FALSE(mask.toggle(100));
  EXPECT_FALSE(mask.contains(100));
  mask.insert(5);
  mask.insert(5);
  EXPECT_EQ(mask.num_flips(), 1u);
  mask.erase(5);
  EXPECT_TRUE(mask.empty());
}

TEST(FaultMask, ConstructorDedupsAndSorts) {
  FaultMask mask({9, 3, 9, 1});
  EXPECT_EQ(mask.num_flips(), 3u);
  EXPECT_EQ(mask.bits(), (std::vector<std::int64_t>{1, 3, 9}));
}

TEST(FaultMask, SymmetricDifference) {
  FaultMask a({1, 2, 3});
  FaultMask b({3, 4});
  EXPECT_EQ(FaultMask::symmetric_difference(a, b),
            (std::vector<std::int64_t>{1, 2, 4}));
}

TEST(FaultSite, FlatRoundTrip) {
  const FaultSite site{17, 23};
  EXPECT_EQ(FaultSite::from_flat(site.flat()), site);
}

class InjectionSpaceTest : public ::testing::Test {
 protected:
  InjectionSpaceTest() : rng_(1), net_(nn::make_mlp({2, 4, 3}, rng_)) {}
  util::Rng rng_;
  nn::Network net_;
};

TEST_F(InjectionSpaceTest, TotalsMatchParamCount) {
  InjectionSpace space(net_);
  EXPECT_EQ(space.total_elements(), net_.num_params());
  EXPECT_EQ(space.total_bits(), net_.num_params() * 32);
}

TEST_F(InjectionSpaceTest, SingleLayerSpec) {
  InjectionSpace space(net_, TargetSpec::single_layer("fc1"));
  EXPECT_EQ(space.total_elements(), 2 * 4 + 4);
  for (const auto& e : space.entries()) {
    EXPECT_EQ(e.name.substr(0, 4), "fc1.");
  }
}

TEST_F(InjectionSpaceTest, WeightsOnlySpec) {
  InjectionSpace space(net_, TargetSpec::weights_only());
  EXPECT_EQ(space.total_elements(), 2 * 4 + 4 * 3);
}

TEST_F(InjectionSpaceTest, EmptySpecAborts) {
  EXPECT_DEATH(InjectionSpace(net_, TargetSpec::single_layer("nope")),
               "no fault targets");
}

TEST_F(InjectionSpaceTest, ElementPtrResolvesAcrossTensors) {
  InjectionSpace space(net_);
  // First element of the second tensor (fc1.bias) is at offset 8.
  const auto& entry = space.entry_of(8);
  EXPECT_EQ(entry.name, "fc1.bias");
  EXPECT_EQ(space.element_ptr(8), entry.value->data());
}

TEST_F(InjectionSpaceTest, ApplyIsSelfInverse) {
  InjectionSpace space(net_);
  util::Rng rng{2};
  const FaultMask mask = space.sample_mask(AvfProfile::uniform(), 0.01, rng);
  ASSERT_GT(mask.num_flips(), 0u);

  std::vector<float> before;
  for (const auto& e : space.entries()) {
    for (std::int64_t i = 0; i < e.value->numel(); ++i) {
      before.push_back((*e.value)[i]);
    }
  }
  space.apply(mask);
  bool changed = false;
  std::size_t k = 0;
  for (const auto& e : space.entries()) {
    for (std::int64_t i = 0; i < e.value->numel(); ++i, ++k) {
      if (float_to_bits((*e.value)[i]) != float_to_bits(before[k])) {
        changed = true;
      }
    }
  }
  EXPECT_TRUE(changed);
  space.apply(mask);
  k = 0;
  for (const auto& e : space.entries()) {
    for (std::int64_t i = 0; i < e.value->numel(); ++i, ++k) {
      EXPECT_EQ(float_to_bits((*e.value)[i]), float_to_bits(before[k]));
    }
  }
}

TEST_F(InjectionSpaceTest, SampleMaskRateMatchesP) {
  InjectionSpace space(net_);
  util::Rng rng{3};
  const double p = 0.02;
  std::size_t total_flips = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    total_flips +=
        space.sample_mask(AvfProfile::uniform(), p, rng).num_flips();
  }
  const double expected = p * static_cast<double>(space.total_bits());
  const double observed =
      static_cast<double>(total_flips) / static_cast<double>(trials);
  EXPECT_NEAR(observed, expected, 0.15 * expected);
}

TEST_F(InjectionSpaceTest, SampleMaskRespectsProfileZeros) {
  InjectionSpace space(net_);
  util::Rng rng{4};
  const FaultMask mask =
      space.sample_mask(AvfProfile::mantissa_only(), 0.3, rng);
  for (std::int64_t flat : mask.bits()) {
    EXPECT_TRUE(is_mantissa_bit(static_cast<int>(flat % 32)));
  }
}

TEST_F(InjectionSpaceTest, LogPriorOrdersMasksBySize) {
  InjectionSpace space(net_);
  const AvfProfile profile = AvfProfile::uniform();
  const double p = 1e-3;
  const FaultMask empty;
  const FaultMask one({0});
  const FaultMask two({0, 33});
  const double lp0 = space.log_prior(empty, profile, p);
  const double lp1 = space.log_prior(one, profile, p);
  const double lp2 = space.log_prior(two, profile, p);
  // At small p, each extra flip costs log(p/(1-p)) < 0.
  EXPECT_GT(lp0, lp1);
  EXPECT_GT(lp1, lp2);
  EXPECT_NEAR(lp1 - lp0, std::log(p) - std::log1p(-p), 1e-9);
}

TEST_F(InjectionSpaceTest, LogPriorToggleDeltaMatchesFullPrior) {
  InjectionSpace space(net_);
  const AvfProfile profile = AvfProfile::uniform();
  const double p = 5e-4;
  FaultMask mask({64, 131});
  const double before = space.log_prior(mask, profile, p);
  const double delta = space.log_prior_toggle_delta(999, profile, p);
  mask.toggle(999);
  EXPECT_NEAR(space.log_prior(mask, profile, p), before + delta, 1e-9);
}

TEST_F(InjectionSpaceTest, ZeroProbBitHasMinusInfPrior) {
  InjectionSpace space(net_);
  const AvfProfile profile = AvfProfile::mantissa_only();
  FaultMask mask({static_cast<std::int64_t>(31)});  // sign bit of element 0
  EXPECT_EQ(space.log_prior(mask, profile, 0.1),
            -std::numeric_limits<double>::infinity());
}

TEST(CorruptTensor, FlipCountScalesWithP) {
  tensor::Tensor t{tensor::Shape{1000}};
  util::Rng rng{5};
  const std::size_t flips =
      corrupt_tensor(t, AvfProfile::uniform(), 0.01, rng);
  // 1000 els * 32 bits * 0.01 = 320 expected.
  EXPECT_GT(flips, 200u);
  EXPECT_LT(flips, 450u);
}

TEST(CorruptTensor, ZeroPLeavesTensorIntact) {
  tensor::Tensor t = tensor::Tensor::full(tensor::Shape{10}, 1.0f);
  util::Rng rng{6};
  // mantissa_only at p for exponent bits is 0; use profile with all zeros via
  // p so small the expected flips ~ 0 is not guaranteed — instead verify the
  // self-inverse double-corruption route: corrupt twice with same RNG seed.
  tensor::Tensor u = t;
  util::Rng r1{7}, r2{7};
  corrupt_tensor(t, AvfProfile::uniform(), 0.05, r1);
  corrupt_tensor(t, AvfProfile::uniform(), 0.05, r2);  // same bits again
  EXPECT_EQ(tensor::Tensor::max_abs_diff(t, u), 0.0f);
}

}  // namespace
}  // namespace bdlfi::fault
