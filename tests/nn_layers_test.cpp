// Layer unit tests: shapes, forward values, backward gradient checks,
// parameter enumeration, cloning.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/layers.h"
#include "util/rng.h"

namespace bdlfi::nn {
namespace {

TEST(Dense, ForwardMatchesManual) {
  Dense d(2, 3);
  // W = [[1,2],[3,4],[5,6]], b = [0.5, -0.5, 0].
  d.weight() = Tensor{Shape{3, 2}, {1, 2, 3, 4, 5, 6}};
  d.bias() = Tensor{Shape{3}, {0.5f, -0.5f, 0.0f}};
  Tensor x{Shape{1, 2}, {1.0f, -1.0f}};
  Tensor y = d.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 - 2 + 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 3 - 4 - 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 5 - 6 + 0.0f);
}

TEST(Dense, BackwardGradientCheck) {
  util::Rng rng{1};
  Dense d(4, 3);
  d.init_he(rng);
  Tensor x = Tensor::randn(Shape{5, 4}, rng);

  Tensor out = d.forward(x, true);
  Tensor grad_out = Tensor::full(out.shape(), 1.0f);
  d.zero_grad();
  Tensor grad_in = d.backward(grad_out);

  auto loss = [&](Dense& layer, const Tensor& input) {
    Tensor o = layer.forward(input, false);
    double s = 0.0;
    for (std::int64_t i = 0; i < o.numel(); ++i) s += o[i];
    return s;
  };

  const float eps = 1e-2f;
  for (std::int64_t idx : {0L, 3L, 11L}) {
    Tensor xp = x, xm = x;
    xp[idx] += eps;
    xm[idx] -= eps;
    const double numeric = (loss(d, xp) - loss(d, xm)) / (2.0 * eps);
    EXPECT_NEAR(grad_in[idx], numeric, 1e-2);
  }
  std::vector<ParamRef> refs;
  d.collect_params("d.", refs);
  ASSERT_EQ(refs.size(), 2u);
  for (std::int64_t idx : {0L, 5L}) {
    Tensor saved = *refs[0].value;
    (*refs[0].value)[idx] += eps;
    const double up = loss(d, x);
    (*refs[0].value)[idx] -= 2 * eps;
    const double dn = loss(d, x);
    *refs[0].value = saved;
    EXPECT_NEAR((*refs[0].grad)[idx], (up - dn) / (2.0 * eps), 2e-2);
  }
}

TEST(Dense, CollectParamsNamesAndRoles) {
  Dense d(2, 3);
  std::vector<ParamRef> refs;
  d.collect_params("fc1.", refs);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].name, "fc1.weight");
  EXPECT_EQ(refs[0].role, ParamRole::kWeight);
  EXPECT_EQ(refs[1].name, "fc1.bias");
  EXPECT_EQ(refs[1].role, ParamRole::kBias);
  EXPECT_EQ(d.num_params(), 3 * 2 + 3);
}

TEST(Dense, CloneIsDeepCopy) {
  util::Rng rng{2};
  Dense d(2, 2);
  d.init_he(rng);
  auto copy = d.clone();
  auto* dc = static_cast<Dense*>(copy.get());
  EXPECT_EQ(Tensor::max_abs_diff(d.weight(), dc->weight()), 0.0f);
  dc->weight()[0] += 1.0f;
  EXPECT_NE(d.weight()[0], dc->weight()[0]);
}

TEST(ReLU, ZeroesNegatives) {
  ReLU r;
  Tensor x{Shape{1, 3}, {-1.0f, 0.5f, 0.0f}};
  Tensor y = r.forward(x, false);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.5f);
}

TEST(Flatten, RoundTripsShape) {
  Flatten f;
  Tensor x = Tensor::arange(Shape{2, 3, 4, 5});
  Tensor y = f.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 60}));
  Tensor back = f.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
  EXPECT_EQ(Tensor::max_abs_diff(back, x), 0.0f);
}

TEST(Conv2dLayer, ShapeAndParamCount) {
  Conv2d conv(3, 8, 3, 2);
  Tensor x{Shape{2, 3, 8, 8}};
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({2, 8, 4, 4}));
  EXPECT_EQ(conv.num_params(), 8 * 3 * 3 * 3);
}

TEST(Conv2dLayer, GradAccumulatesAcrossBackwardCalls) {
  util::Rng rng{3};
  Conv2d conv(1, 1, 3);
  conv.init_he(rng);
  Tensor x = Tensor::randn(Shape{1, 1, 4, 4}, rng);
  conv.zero_grad();
  Tensor out = conv.forward(x, true);
  Tensor ones = Tensor::full(out.shape(), 1.0f);
  conv.backward(ones);
  std::vector<ParamRef> refs;
  conv.collect_params("c.", refs);
  Tensor once = *refs[0].grad;
  conv.forward(x, true);
  conv.backward(ones);
  for (std::int64_t i = 0; i < once.numel(); ++i) {
    EXPECT_NEAR((*refs[0].grad)[i], 2.0f * once[i], 1e-4f);
  }
}

TEST(BatchNorm, TrainingNormalizesBatch) {
  util::Rng rng{4};
  BatchNorm2d bn(3);
  Tensor x = Tensor::randn(Shape{4, 3, 5, 5}, rng, 2.0f, 3.0f);
  Tensor y = bn.forward(x, true);
  // Per channel: mean ~0, var ~1 after normalization with default affine.
  for (std::int64_t ch = 0; ch < 3; ++ch) {
    double sum = 0.0, sq = 0.0;
    std::int64_t count = 0;
    for (std::int64_t s = 0; s < 4; ++s) {
      for (std::int64_t i = 0; i < 25; ++i) {
        const float v = y.data()[(s * 3 + ch) * 25 + i];
        sum += v;
        sq += static_cast<double>(v) * v;
        ++count;
      }
    }
    const double mean = sum / count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / count - mean * mean, 1.0, 1e-3);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  // Set running stats manually: mean 2, var 4 → y = (x-2)/2.
  bn.running_mean()[0] = 2.0f;
  bn.running_var()[0] = 4.0f;
  Tensor x = Tensor::full(Shape{1, 1, 2, 2}, 6.0f);
  Tensor y = bn.forward(x, false);
  EXPECT_NEAR(y[0], 2.0f, 1e-3f);
}

TEST(BatchNorm, BackwardGradientCheck) {
  util::Rng rng{5};
  BatchNorm2d bn(2);
  Tensor x = Tensor::randn(Shape{3, 2, 2, 2}, rng);

  // Weighted-sum loss keeps the check sensitive to the normalization terms.
  Tensor w = Tensor::randn(Shape{3, 2, 2, 2}, rng);
  auto loss = [&](const Tensor& input) {
    BatchNorm2d fresh(2);  // same affine defaults, fresh running stats
    Tensor o = fresh.forward(input, true);
    double s = 0.0;
    for (std::int64_t i = 0; i < o.numel(); ++i) s += o[i] * w[i];
    return s;
  };

  Tensor out = bn.forward(x, true);
  bn.zero_grad();
  Tensor grad_in = bn.backward(w);

  const float eps = 1e-2f;
  for (std::int64_t idx : {0L, 9L, 17L, 23L}) {
    Tensor xp = x, xm = x;
    xp[idx] += eps;
    xm[idx] -= eps;
    const double numeric = (loss(xp) - loss(xm)) / (2.0 * eps);
    EXPECT_NEAR(grad_in[idx], numeric, 5e-2) << "idx " << idx;
  }
}

TEST(BatchNorm, BuffersReported) {
  BatchNorm2d bn(4);
  std::vector<ParamRef> bufs;
  bn.collect_buffers("bn.", bufs);
  ASSERT_EQ(bufs.size(), 2u);
  EXPECT_EQ(bufs[0].name, "bn.running_mean");
  EXPECT_EQ(bufs[0].role, ParamRole::kBnRunningMean);
  EXPECT_EQ(bufs[0].grad, nullptr);
}

TEST(MaxPoolLayer, ForwardBackwardShapes) {
  MaxPool2d pool(2);
  Tensor x = Tensor::arange(Shape{1, 2, 4, 4});
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 2, 2, 2}));
  Tensor g = pool.backward(Tensor::full(y.shape(), 1.0f));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(ParamRoleNames, AllDistinct) {
  EXPECT_STREQ(param_role_name(ParamRole::kWeight), "weight");
  EXPECT_STREQ(param_role_name(ParamRole::kBias), "bias");
  EXPECT_STREQ(param_role_name(ParamRole::kBnGamma), "gamma");
  EXPECT_STREQ(param_role_name(ParamRole::kBnBeta), "beta");
  EXPECT_STREQ(param_role_name(ParamRole::kBnRunningMean), "running_mean");
  EXPECT_STREQ(param_role_name(ParamRole::kBnRunningVar), "running_var");
}

}  // namespace
}  // namespace bdlfi::nn
