// Numeric kernels vs naive references: GEMM (all transpose combos), softmax,
// im2col/conv/pool forward & backward gradient checks.
#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace bdlfi::tensor {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  Tensor c{Shape{m, n}};
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += a.at(i, kk) * b.at(kk, j);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

TEST(Gemm, MatmulMatchesNaiveSmall) {
  util::Rng rng{1};
  Tensor a = Tensor::randn(Shape{5, 7}, rng);
  Tensor b = Tensor::randn(Shape{7, 3}, rng);
  EXPECT_LT(Tensor::max_abs_diff(matmul(a, b), naive_matmul(a, b)), 1e-4f);
}

TEST(Gemm, MatmulMatchesNaiveLargeParallel) {
  util::Rng rng{2};
  Tensor a = Tensor::randn(Shape{70, 90}, rng);
  Tensor b = Tensor::randn(Shape{90, 60}, rng);
  EXPECT_LT(Tensor::max_abs_diff(matmul(a, b), naive_matmul(a, b)), 1e-3f);
}

TEST(Gemm, TransposeACorrect) {
  util::Rng rng{3};
  Tensor a = Tensor::randn(Shape{7, 5}, rng);  // will be used as A^T (5x7)
  Tensor b = Tensor::randn(Shape{7, 4}, rng);
  Tensor c{Shape{5, 4}};
  gemm(true, false, 5, 4, 7, 1.0f, a.data(), 5, b.data(), 4, 0.0f, c.data(),
       4);
  // Reference: c[i][j] = sum_k a[k][i] * b[k][j]
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      float acc = 0.0f;
      for (std::int64_t k = 0; k < 7; ++k) acc += a.at(k, i) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-4f);
    }
  }
}

TEST(Gemm, TransposeBCorrect) {
  util::Rng rng{4};
  Tensor a = Tensor::randn(Shape{5, 7}, rng);
  Tensor b = Tensor::randn(Shape{4, 7}, rng);  // used as B^T (7x4)
  Tensor c{Shape{5, 4}};
  gemm(false, true, 5, 4, 7, 1.0f, a.data(), 7, b.data(), 7, 0.0f, c.data(),
       4);
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      float acc = 0.0f;
      for (std::int64_t k = 0; k < 7; ++k) acc += a.at(i, k) * b.at(j, k);
      EXPECT_NEAR(c.at(i, j), acc, 1e-4f);
    }
  }
}

TEST(Gemm, AlphaBetaAccumulate) {
  util::Rng rng{5};
  Tensor a = Tensor::randn(Shape{3, 3}, rng);
  Tensor b = Tensor::randn(Shape{3, 3}, rng);
  Tensor c0 = Tensor::full(Shape{3, 3}, 1.0f);
  Tensor c = c0;
  gemm(false, false, 3, 3, 3, 2.0f, a.data(), 3, b.data(), 3, 0.5f, c.data(),
       3);
  Tensor ref = naive_matmul(a, b);
  for (std::int64_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(c[i], 2.0f * ref[i] + 0.5f, 1e-4f);
  }
}

TEST(Elementwise, AddAndAxpy) {
  Tensor a = Tensor::full(Shape{4}, 1.0f);
  Tensor b = Tensor::arange(Shape{4});
  add_inplace(a, b);
  EXPECT_EQ(a[3], 4.0f);
  axpy_inplace(a, -2.0f, b);
  EXPECT_EQ(a[3], -2.0f);
}

TEST(Elementwise, ReluForwardBackward) {
  Tensor x{Shape{4}, {-1.0f, 0.0f, 2.0f, -3.0f}};
  Tensor y = x;
  relu_inplace(y);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  Tensor g = Tensor::full(Shape{4}, 1.0f);
  relu_backward_inplace(g, x);
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[1], 0.0f);  // gradient at exactly 0 defined as 0
  EXPECT_EQ(g[2], 1.0f);
}

TEST(Softmax, RowsSumToOne) {
  util::Rng rng{6};
  Tensor logits = Tensor::randn(Shape{8, 5}, rng, 0.0f, 3.0f);
  Tensor p = softmax_rows(logits);
  for (std::int64_t r = 0; r < 8; ++r) {
    float sum = 0.0f;
    for (std::int64_t c = 0; c < 5; ++c) sum += p.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Softmax, LargeLogitsStable) {
  Tensor logits{Shape{1, 3}, {1000.0f, 1001.0f, 999.0f}};
  Tensor p = softmax_rows(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_GT(p[1], p[0]);
}

TEST(Softmax, NanRowFallsBackToUniform) {
  const float nan = std::nanf("");
  Tensor logits{Shape{1, 4}, {nan, nan, nan, nan}};
  Tensor p = softmax_rows(logits);
  for (int c = 0; c < 4; ++c) EXPECT_NEAR(p[c], 0.25f, 1e-6f);
}

TEST(Softmax, InfinityDominates) {
  const float inf = std::numeric_limits<float>::infinity();
  Tensor logits{Shape{1, 3}, {0.0f, inf, 0.0f}};
  Tensor p = softmax_rows(logits);
  EXPECT_NEAR(p[1], 1.0f, 1e-6f);
}

TEST(LogSoftmax, MatchesLogOfSoftmax) {
  util::Rng rng{7};
  Tensor logits = Tensor::randn(Shape{4, 6}, rng);
  Tensor lp = log_softmax_rows(logits);
  Tensor p = softmax_rows(logits);
  for (std::int64_t i = 0; i < lp.numel(); ++i) {
    EXPECT_NEAR(lp[i], std::log(p[i]), 1e-4f);
  }
}

TEST(Argmax, PicksMaxAndIgnoresNan) {
  const float nan = std::nanf("");
  Tensor m{Shape{2, 3}, {1.0f, 5.0f, 2.0f, 3.0f, nan, 1.0f}};
  const auto idx = argmax_rows(m);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);  // NaN never displaces the incumbent
}

// --- conv / pool -------------------------------------------------------------

Tensor naive_conv2d(const Tensor& input, const Tensor& weight,
                    const Tensor& bias, const Conv2dSpec& spec) {
  const std::int64_t n = input.shape()[0], c = input.shape()[1],
                     h = input.shape()[2], w = input.shape()[3];
  const std::int64_t o = weight.shape()[0];
  const std::int64_t oh = spec.out_h(h), ow = spec.out_w(w);
  Tensor out{Shape{n, o, oh, ow}};
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t oc = 0; oc < o; ++oc) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float acc = bias.empty() ? 0.0f : bias[oc];
          for (std::int64_t ic = 0; ic < c; ++ic) {
            for (std::int64_t ky = 0; ky < spec.kernel_h; ++ky) {
              for (std::int64_t kx = 0; kx < spec.kernel_w; ++kx) {
                const std::int64_t iy = oy * spec.stride - spec.pad_h + ky;
                const std::int64_t ix = ox * spec.stride - spec.pad_w + kx;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                acc += input.at(s, ic, iy, ix) * weight.at(oc, ic, ky, kx);
              }
            }
          }
          out.at(s, oc, oy, ox) = acc;
        }
      }
    }
  }
  return out;
}

TEST(Conv2d, MatchesNaiveSamePadding) {
  util::Rng rng{8};
  Tensor input = Tensor::randn(Shape{2, 3, 8, 8}, rng);
  Tensor weight = Tensor::randn(Shape{4, 3, 3, 3}, rng);
  Tensor bias = Tensor::randn(Shape{4}, rng);
  Conv2dSpec spec;  // 3x3, stride 1, pad 1
  EXPECT_LT(Tensor::max_abs_diff(conv2d_forward(input, weight, bias, spec),
                                 naive_conv2d(input, weight, bias, spec)),
            1e-3f);
}

TEST(Conv2d, MatchesNaiveStride2) {
  util::Rng rng{9};
  Tensor input = Tensor::randn(Shape{1, 2, 9, 9}, rng);
  Tensor weight = Tensor::randn(Shape{3, 2, 3, 3}, rng);
  Conv2dSpec spec;
  spec.stride = 2;
  EXPECT_LT(Tensor::max_abs_diff(conv2d_forward(input, weight, {}, spec),
                                 naive_conv2d(input, weight, {}, spec)),
            1e-3f);
}

TEST(Conv2d, OneByOneKernel) {
  util::Rng rng{10};
  Tensor input = Tensor::randn(Shape{1, 4, 5, 5}, rng);
  Tensor weight = Tensor::randn(Shape{2, 4, 1, 1}, rng);
  Conv2dSpec spec;
  spec.kernel_h = spec.kernel_w = 1;
  spec.set_pad(0);
  EXPECT_LT(Tensor::max_abs_diff(conv2d_forward(input, weight, {}, spec),
                                 naive_conv2d(input, weight, {}, spec)),
            1e-3f);
}

TEST(Conv2d, BackwardNumericalGradientCheck) {
  util::Rng rng{11};
  Tensor input = Tensor::randn(Shape{1, 2, 5, 5}, rng);
  Tensor weight = Tensor::randn(Shape{2, 2, 3, 3}, rng);
  Tensor bias = Tensor::randn(Shape{2}, rng);
  Conv2dSpec spec;

  // Loss = sum(conv(input)); analytic gradients via conv2d_backward.
  Tensor out = conv2d_forward(input, weight, bias, spec);
  Tensor grad_out = Tensor::full(out.shape(), 1.0f);
  Tensor gi, gw, gb;
  conv2d_backward(input, weight, grad_out, spec, gi, gw, gb);

  auto loss = [&](const Tensor& in, const Tensor& w) {
    Tensor o = conv2d_forward(in, w, bias, spec);
    double s = 0.0;
    for (std::int64_t i = 0; i < o.numel(); ++i) s += o[i];
    return s;
  };
  const float eps = 1e-2f;
  // Spot-check a few input coordinates.
  for (std::int64_t idx : {0L, 7L, 24L, 49L}) {
    Tensor in_p = input, in_m = input;
    in_p[idx] += eps;
    in_m[idx] -= eps;
    const double numeric = (loss(in_p, weight) - loss(in_m, weight)) /
                           (2.0 * eps);
    EXPECT_NEAR(gi[idx], numeric, 1e-2) << "input idx " << idx;
  }
  for (std::int64_t idx : {0L, 5L, 17L}) {
    Tensor w_p = weight, w_m = weight;
    w_p[idx] += eps;
    w_m[idx] -= eps;
    const double numeric = (loss(input, w_p) - loss(input, w_m)) /
                           (2.0 * eps);
    EXPECT_NEAR(gw[idx], numeric, 2e-2) << "weight idx " << idx;
  }
  // Bias gradient of sum-loss = #output positions per channel.
  EXPECT_NEAR(gb[0], 25.0f, 1e-3f);
}

TEST(Im2Col, Col2ImRoundTripAccumulates) {
  // col2im(im2col(x)) counts each pixel once per covering window (k^2 with
  // stride 1, same pad, interior pixels).
  Tensor input = Tensor::full(Shape{1, 1, 6, 6}, 1.0f);
  Conv2dSpec spec;
  const std::int64_t oh = spec.out_h(6), ow = spec.out_w(6);
  std::vector<float> cols(static_cast<std::size_t>(9 * oh * ow));
  im2col(input.data(), 1, 6, 6, spec, cols.data());
  Tensor back{Shape{1, 1, 6, 6}};
  col2im(cols.data(), 1, 6, 6, spec, back.data());
  EXPECT_FLOAT_EQ(back.at(0, 0, 3, 3), 9.0f);  // interior: 9 windows
  EXPECT_FLOAT_EQ(back.at(0, 0, 0, 0), 4.0f);  // corner: 4 windows
}

TEST(MaxPool, ForwardAndBackward) {
  Tensor input = Tensor::arange(Shape{1, 1, 4, 4});
  std::vector<std::int64_t> argmax;
  Tensor out = maxpool2d_forward(input, 2, argmax);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0, 0), 5.0f);
  EXPECT_EQ(out.at(0, 0, 1, 1), 15.0f);

  Tensor grad_out = Tensor::full(out.shape(), 1.0f);
  Tensor grad_in = maxpool2d_backward(grad_out, input.shape(), argmax);
  EXPECT_EQ(grad_in.at(0, 0, 1, 1), 1.0f);   // position of 5
  EXPECT_EQ(grad_in.at(0, 0, 0, 0), 0.0f);
  float total = 0.0f;
  for (std::int64_t i = 0; i < grad_in.numel(); ++i) total += grad_in[i];
  EXPECT_EQ(total, 4.0f);
}

TEST(GlobalAvgPool, ForwardBackward) {
  Tensor input = Tensor::arange(Shape{1, 2, 2, 2});
  Tensor out = global_avgpool_forward(input);
  EXPECT_EQ(out.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 5.5f);

  Tensor grad_out = Tensor::full(Shape{1, 2}, 4.0f);
  Tensor grad_in = global_avgpool_backward(grad_out, input.shape());
  EXPECT_FLOAT_EQ(grad_in.at(0, 0, 0, 0), 1.0f);  // 4 / (2*2)
}

}  // namespace
}  // namespace bdlfi::tensor
