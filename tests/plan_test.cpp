// Planned-allocation arena + ExecutionPlan contracts (DESIGN.md §13):
//   * the compiled arena is sized at the observed high-water mark and is
//     never re-reserved by steady-state evals (Arena::total_allocations);
//   * ≥1000 steady-state evals perform no large heap allocations
//     (instrumented global allocator; small control-flow vectors under the
//     4 KiB threshold are explicitly out of scope — see DESIGN.md §13);
//   * cloned networks compile independent plans with independent arenas;
//   * unfused planned execution is bit-exact with the legacy layer-by-layer
//     path (full forwards and truncated forward_from replays alike), which
//     is exactly the --no-fuse guarantee;
//   * BN-folded fused execution matches unfused within the documented
//     tolerance, and fold_conv_bn itself matches conv→bn→relu;
//   * fault-site enumeration (names, offsets, owning layers) is identical
//     with fusion on and off — fusion never renames or reorders sites;
//   * evaluate_masks stays bit-exact with sequential evaluation on the
//     planned path for K ∈ {1, 8, 32};
//   * the profiling flag is snapshotted at plan compile time: toggling it
//     invalidates the plan instead of mutating a compiled one.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "bayes/fault_network.h"
#include "data/cifar_like.h"
#include "data/toy2d.h"
#include "fault/space.h"
#include "nn/arena.h"
#include "nn/batchnorm.h"
#include "nn/builders.h"
#include "nn/conv.h"
#include "nn/network.h"
#include "nn/plan.h"
#include "tensor/ops.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Instrumented global allocator: counts heap allocations at or above the
// panel-scale threshold while armed. Small per-call bookkeeping (flag
// parsing, outcome structs, sub-4KiB control-flow vectors) is deliberately
// ignored — the zero-allocation guarantee is about activation/weight buffer
// churn, not about every std::vector in the control flow.
namespace {

constexpr std::size_t kLargeThreshold = 4096;
std::atomic<bool> g_count_large{false};
std::atomic<std::size_t> g_large_allocs{0};

struct AllocWatch {
  AllocWatch() {
    g_large_allocs.store(0, std::memory_order_relaxed);
    g_count_large.store(true, std::memory_order_relaxed);
  }
  ~AllocWatch() { g_count_large.store(false, std::memory_order_relaxed); }
  std::size_t count() const {
    return g_large_allocs.load(std::memory_order_relaxed);
  }
};

}  // namespace

void* operator new(std::size_t size) {
  if (size >= kLargeThreshold &&
      g_count_large.load(std::memory_order_relaxed)) {
    g_large_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  if (size >= kLargeThreshold &&
      g_count_large.load(std::memory_order_relaxed)) {
    g_large_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
// GCC pairs these malloc-backed deallocators against the replaced operator
// new heuristically and warns; the pairing is in fact consistent (every new
// above allocates with malloc).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace bdlfi {
namespace {

using tensor::Shape;
using tensor::Tensor;

struct Subject {
  nn::Network net;
  Tensor inputs;
  std::vector<std::int64_t> labels;
};

Subject make_mlp_subject() {
  util::Rng data_rng{401};
  data::Dataset data = data::make_two_moons(32, 0.08, data_rng);
  util::Rng init{402};
  return {nn::make_mlp({2, 16, 16, 2}, init), data.inputs, data.labels};
}

Subject make_resnet_subject() {
  data::CifarLikeConfig config;
  config.samples_per_class = 2;
  config.num_classes = 4;
  config.image_size = 8;
  util::Rng data_rng{403};
  data::Dataset data = data::make_cifar_like(config, data_rng);
  nn::ResNetConfig net_config;
  net_config.width_multiplier = 0.0625;
  net_config.num_classes = 4;
  util::Rng init{404};
  return {nn::make_resnet18(net_config, init), data.inputs, data.labels};
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<std::size_t>(a.numel()) * sizeof(float)),
            0);
}

TEST(PlanTest, CompilesOnFirstEvalForwardAndCovers) {
  Subject s = make_resnet_subject();
  EXPECT_TRUE(s.net.planned());
  EXPECT_EQ(s.net.plan_for(s.inputs.shape()), nullptr);

  (void)s.net.forward_view(0, s.inputs);
  const nn::ExecutionPlan* plan = s.net.plan_for(s.inputs.shape());
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->covers(0, s.inputs.shape()));
  EXPECT_GT(plan->arena_floats(), 0u);
  // The rotating-buffer assignment never needs more than the four slots the
  // compiler hands out (main ping-pong + block temporaries).
  EXPECT_LE(plan->num_buffers(), 4u);
  EXPECT_TRUE(plan->fusion_compiled());  // resnet has foldable blocks
}

TEST(PlanTest, ArenaSizedAtHighWaterAndNeverRegrown) {
  Subject s = make_resnet_subject();
  (void)s.net.forward_view(0, s.inputs);  // compile + first run
  const nn::ExecutionPlan* plan = s.net.plan_for(s.inputs.shape());
  ASSERT_NE(plan, nullptr);

  // Every top-level activation must fit the arena — a loose lower bound on
  // the planned high-water mark.
  std::vector<std::int64_t> layer_numels;
  (void)s.net.forward(s.inputs, false, [&](std::size_t, Tensor& act) {
    layer_numels.push_back(act.numel());
  });
  for (const std::int64_t numel : layer_numels) {
    EXPECT_LE(static_cast<std::size_t>(numel), plan->arena_floats());
  }

  // Steady state: the planned size IS the observed high-water mark — no eval
  // ever re-reserves an arena (process-wide counter stays flat).
  const std::size_t before = nn::Arena::total_allocations();
  Tensor first = s.net.forward_view(0, s.inputs);  // copy to keep
  for (int i = 0; i < 1000; ++i) {
    const Tensor& logits = s.net.forward_view(0, s.inputs);
    ASSERT_EQ(logits.numel(), first.numel());
  }
  EXPECT_EQ(nn::Arena::total_allocations(), before);
  expect_bitwise_equal(s.net.forward_view(0, s.inputs), first);
}

TEST(PlanTest, SteadyStateForwardsMakeNoLargeAllocations) {
  Subject s = make_resnet_subject();
  for (int i = 0; i < 3; ++i) (void)s.net.forward_view(0, s.inputs);  // warm

  AllocWatch watch;
  for (int i = 0; i < 1000; ++i) (void)s.net.forward_view(0, s.inputs);
  EXPECT_EQ(watch.count(), 0u);
}

TEST(PlanTest, SteadyStateMaskEvalsMakeNoLargeAllocations) {
  Subject s = make_resnet_subject();
  bayes::BayesianFaultNetwork bfn(s.net, bayes::TargetSpec::all_parameters(),
                                  fault::AvfProfile::uniform(), s.inputs,
                                  s.labels);
  util::Rng rng{405};
  std::vector<fault::FaultMask> masks;
  for (int i = 0; i < 25; ++i) {
    masks.push_back(bfn.sample_prior_mask(1e-5, rng));
  }
  for (const auto& mask : masks) (void)bfn.evaluate_mask(mask);  // warm pools

  AllocWatch watch;
  for (int rep = 0; rep < 40; ++rep) {
    for (const auto& mask : masks) (void)bfn.evaluate_mask(mask);
  }
  EXPECT_EQ(watch.count(), 0u);
}

TEST(PlanTest, ClonedNetworksOwnIndependentPlansAndArenas) {
  Subject s = make_resnet_subject();
  (void)s.net.forward_view(0, s.inputs);

  nn::Network copy = s.net.clone();
  EXPECT_TRUE(copy.planned());
  // Plans are not copied — the clone compiles its own on first use.
  EXPECT_EQ(copy.plan_for(s.inputs.shape()), nullptr);
  (void)copy.forward_view(0, s.inputs);
  const nn::ExecutionPlan* pa = s.net.plan_for(s.inputs.shape());
  const nn::ExecutionPlan* pb = copy.plan_for(s.inputs.shape());
  ASSERT_NE(pa, nullptr);
  ASSERT_NE(pb, nullptr);
  EXPECT_NE(pa, pb);

  // A borrowed view of one network's arena must survive forwards on the
  // other: the arenas are physically independent.
  const Tensor& via_a = s.net.forward_view(0, s.inputs);
  Tensor kept = via_a;  // materialized copy
  Tensor other_input{s.inputs.shape()};  // zeros: a different input
  (void)copy.forward_view(0, other_input);
  expect_bitwise_equal(via_a, kept);
}

TEST(PlanTest, PlannedUnfusedIsBitExactWithLegacy) {
  const auto check = [](Subject s) {
    s.net.set_planned(false);
    Tensor legacy = s.net.forward(s.inputs);
    s.net.set_planned(true);
    EXPECT_FALSE(s.net.eval_fusion());  // --no-fuse semantics by default
    Tensor planned = s.net.forward(s.inputs);
    expect_bitwise_equal(legacy, planned);

    // Truncated replays hit the same plan mid-network; parity must hold for
    // every resume point, since the mask-evaluation pipeline rests on it.
    std::vector<Tensor> acts;
    s.net.set_planned(false);
    (void)s.net.forward(s.inputs, false, [&](std::size_t, Tensor& act) {
      acts.push_back(act);
    });
    for (std::size_t k = 1; k < acts.size(); ++k) {
      s.net.set_planned(false);
      Tensor want = s.net.forward_from(k, acts[k - 1]);
      s.net.set_planned(true);
      const Tensor& got = s.net.forward_view(k, acts[k - 1]);
      expect_bitwise_equal(want, got);
    }
  };
  check(make_mlp_subject());
  check(make_resnet_subject());
}

TEST(PlanTest, FusedExecutionMatchesUnfusedWithinTolerance) {
  Subject s = make_resnet_subject();
  Tensor unfused = s.net.forward(s.inputs);
  s.net.set_eval_fusion(true);
  Tensor fused = s.net.forward(s.inputs);
  ASSERT_EQ(unfused.shape(), fused.shape());
  for (std::int64_t i = 0; i < unfused.numel(); ++i) {
    const float a = unfused[i], b = fused[i];
    EXPECT_NEAR(a, b, 1e-4f * (1.0f + std::abs(a)))
        << "logit " << i << " diverged beyond the BN-fold tolerance";
  }
  // Escape hatch: turning fusion back off restores bit-exactness without a
  // recompile (the unfused lowering is always retained in the plan).
  s.net.set_eval_fusion(false);
  expect_bitwise_equal(s.net.forward(s.inputs), unfused);
}

TEST(PlanTest, FoldConvBnMatchesConvThenBn) {
  util::Rng rng{406};
  nn::Conv2d conv(3, 5, 3, /*stride=*/1, /*pad=*/1, /*bias=*/true);
  conv.init_he(rng);
  for (std::int64_t c = 0; c < 5; ++c) {
    conv.bias()[c] = 0.02f * static_cast<float>(c) - 0.03f;
  }
  nn::BatchNorm2d bn(5);
  for (std::int64_t c = 0; c < 5; ++c) {
    bn.gamma()[c] = 0.5f + 0.1f * static_cast<float>(c);
    bn.beta()[c] = -0.2f + 0.05f * static_cast<float>(c);
    bn.running_mean()[c] = 0.01f * static_cast<float>(c);
    bn.running_var()[c] = 1.0f + 0.2f * static_cast<float>(c);
  }
  Tensor x{Shape{2, 3, 6, 6}};
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform() - 0.5);
  }

  Tensor want = bn.forward(conv.forward(x, false), false);

  Tensor wf{conv.weight().shape()};
  Tensor bf{Shape{5}};
  nn::fold_conv_bn(conv.weight(), conv.bias(), bn, wf, bf);
  nn::Conv2d folded(3, 5, 3, /*stride=*/1, /*pad=*/1, /*bias=*/true);
  folded.weight() = wf;
  folded.bias() = bf;
  Tensor got = folded.forward(x, false);

  ASSERT_EQ(want.shape(), got.shape());
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    EXPECT_NEAR(want[i], got[i], 1e-5f * (1.0f + std::abs(want[i])));
  }
}

TEST(PlanTest, FaultSiteEnumerationIsStableAcrossFusion) {
  Subject s = make_resnet_subject();
  nn::Network fused_net = s.net.clone();
  fused_net.set_eval_fusion(true);
  (void)fused_net.forward_view(0, s.inputs);  // compile the fused plan

  fault::TargetSpec spec = fault::TargetSpec::all_parameters();
  spec.include_buffers = true;
  fault::InjectionSpace unfused_space(s.net, spec);
  fault::InjectionSpace fused_space(fused_net, spec);

  const auto& a = unfused_space.entries();
  const auto& b = fused_space.entries();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].layer, b[i].layer);
    EXPECT_EQ(a[i].numel, b[i].numel);
    EXPECT_EQ(static_cast<int>(a[i].role), static_cast<int>(b[i].role));
  }
  EXPECT_EQ(unfused_space.total_elements(), fused_space.total_elements());
}

TEST(PlanTest, EvaluateMasksBitExactOnPlannedPath) {
  Subject s = make_resnet_subject();
  util::Rng rng{407};
  for (const std::size_t k : {std::size_t{1}, std::size_t{8},
                              std::size_t{32}}) {
    SCOPED_TRACE("mask_batch=" + std::to_string(k));
    bayes::BayesianFaultNetwork seq(s.net, bayes::TargetSpec::all_parameters(),
                                    fault::AvfProfile::uniform(), s.inputs,
                                    s.labels);
    bayes::BayesianFaultNetwork bat(s.net, bayes::TargetSpec::all_parameters(),
                                    fault::AvfProfile::uniform(), s.inputs,
                                    s.labels);
    std::vector<fault::FaultMask> masks;
    for (int i = 0; i < 12; ++i) {
      masks.push_back(seq.sample_prior_mask(2e-5, rng));
    }
    std::vector<bayes::MaskOutcome> want;
    for (const auto& mask : masks) want.push_back(seq.evaluate_mask(mask));

    const bayes::EvalOutcome got = bat.evaluate({masks, k});
    ASSERT_EQ(got.outcomes.size(), want.size());
    EXPECT_EQ(got.batched + got.sequential, masks.size());
    if (k <= 1) {
      EXPECT_EQ(got.sequential, masks.size());
    }
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_DOUBLE_EQ(want[i].classification_error,
                       got.outcomes[i].classification_error);
      EXPECT_DOUBLE_EQ(want[i].deviation, got.outcomes[i].deviation);
      EXPECT_DOUBLE_EQ(want[i].detected, got.outcomes[i].detected);
      EXPECT_DOUBLE_EQ(want[i].sdc, got.outcomes[i].sdc);
      EXPECT_EQ(want[i].outcome, got.outcomes[i].outcome);
      EXPECT_EQ(want[i].flipped_bits, got.outcomes[i].flipped_bits);
    }
  }
}

TEST(PlanTest, ProfilingFlagIsSnapshottedAtCompile) {
  Subject s = make_resnet_subject();
  (void)s.net.forward_view(0, s.inputs);
  const nn::ExecutionPlan* cold = s.net.plan_for(s.inputs.shape());
  ASSERT_NE(cold, nullptr);
  EXPECT_FALSE(cold->profiling_snapshot());

  // Toggling profiling mid-campaign invalidates the plan; the recompiled one
  // carries the new snapshot — a fused/replayed step can never be counted
  // under a stale flag.
  s.net.set_layer_profiling(true);
  EXPECT_EQ(s.net.plan_for(s.inputs.shape()), nullptr);
  (void)s.net.forward_view(0, s.inputs);
  const nn::ExecutionPlan* hot = s.net.plan_for(s.inputs.shape());
  ASSERT_NE(hot, nullptr);
  EXPECT_TRUE(hot->profiling_snapshot());

  // Re-setting the same value is a no-op — the plan survives.
  s.net.set_layer_profiling(true);
  EXPECT_EQ(s.net.plan_for(s.inputs.shape()), hot);
}

}  // namespace
}  // namespace bdlfi
