// End-to-end integration: the paper's full four-step workflow (§II) on both
// subject architectures, plus cross-module consistency between the MCMC
// estimate, the random-FI estimate, and direct enumeration on a small space.
#include <gtest/gtest.h>

#include <memory>

#include "bayes/targets.h"
#include "data/cifar_like.h"
#include "data/toy2d.h"
#include "inject/activation.h"
#include "inject/campaign.h"
#include "inject/random_fi.h"
#include "mcmc/runner.h"
#include "nn/builders.h"
#include "nn/checkpoint.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace bdlfi {
namespace {

TEST(Integration, FullWorkflowOnMlp) {
  // Step 1: train the golden network.
  util::Rng rng{1};
  data::Dataset all = data::make_two_moons(300, 0.08, rng);
  data::Split split = data::split_dataset(all, 0.8, rng);
  util::Rng init{2};
  nn::Network net = nn::make_mlp({2, 12, 2}, init);
  train::TrainConfig tc;
  tc.epochs = 30;
  tc.lr = 0.05;
  tc.seed = 3;
  const auto trained = train::fit(net, split.train, split.test, tc);
  ASSERT_GT(trained.final_test_accuracy, 0.9);

  // Steps 2-3: fault model over the trained weights, Bayesian fault network.
  bayes::BayesianFaultNetwork bfn(net, bayes::TargetSpec::all_parameters(),
                                  fault::AvfProfile::uniform(),
                                  split.test.inputs, split.test.labels);

  // Step 4: MCMC inference of classification uncertainty at several p.
  mcmc::RunnerConfig runner;
  runner.num_chains = 2;
  runner.mh.samples = 60;
  runner.mh.burn_in = 20;
  runner.seed = 4;
  const auto sweep = inject::run_bdlfi_sweep(bfn, {1e-5, 1e-2}, runner);
  EXPECT_LT(sweep.points[0].mean_error, sweep.points[1].mean_error);
}

TEST(Integration, FullWorkflowOnTinyResnet) {
  data::CifarLikeConfig dc;
  dc.samples_per_class = 12;
  dc.num_classes = 4;
  dc.image_size = 12;
  util::Rng rng{5};
  data::Dataset all = data::make_cifar_like(dc, rng);
  data::Split split = data::split_dataset(all, 0.75, rng);

  nn::ResNetConfig nc;
  nc.width_multiplier = 0.0625;
  nc.num_classes = 4;
  util::Rng init{6};
  nn::Network net = nn::make_resnet18(nc, init);
  train::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 16;
  tc.lr = 0.02;
  tc.seed = 7;
  const auto trained = train::fit(net, split.train, split.test, tc);
  // Better than the 25% chance level — enough signal for injections.
  EXPECT_GT(trained.final_test_accuracy, 0.3);

  bayes::BayesianFaultNetwork bfn(net, bayes::TargetSpec::all_parameters(),
                                  fault::AvfProfile::uniform(),
                                  split.test.inputs, split.test.labels);
  inject::RandomFiConfig fi;
  fi.injections = 20;
  fi.seed = 8;
  const auto quiet = inject::run_random_fi(bfn, 1e-8, fi);
  const auto loud = inject::run_random_fi(bfn, 1e-3, fi);
  EXPECT_LE(quiet.mean_deviation, loud.mean_deviation);
  EXPECT_NEAR(quiet.mean_error, bfn.golden_error(), 1.0);
}

TEST(Integration, McmcRandomFiAndSweepAgree) {
  util::Rng rng{9};
  data::Dataset ds = data::make_blobs(200, 3, 3.0, 0.4, rng);
  util::Rng init{10};
  nn::Network net = nn::make_mlp({2, 10, 3}, init);
  train::TrainConfig tc;
  tc.epochs = 20;
  tc.lr = 0.05;
  tc.seed = 11;
  train::fit(net, ds, ds, tc);
  bayes::BayesianFaultNetwork bfn(net, bayes::TargetSpec::all_parameters(),
                                  fault::AvfProfile::uniform(), ds.inputs,
                                  ds.labels);
  const double p = 2e-3;
  mcmc::RunnerConfig runner;
  runner.num_chains = 4;
  runner.mh.samples = 120;
  runner.mh.burn_in = 40;
  runner.mh.thin = 3;
  runner.seed = 12;
  const auto sweep = inject::run_bdlfi_sweep(bfn, {p}, runner);

  inject::RandomFiConfig fi;
  fi.injections = 600;
  fi.seed = 13;
  const auto random = inject::run_random_fi(bfn, p, fi);

  const double noise = 3.0 * (random.ci95_halfwidth + 1.0);
  EXPECT_NEAR(sweep.points[0].mean_error, random.mean_error, noise);
}

TEST(Integration, CheckpointedNetworkGivesIdenticalCampaign) {
  util::Rng rng{14};
  data::Dataset ds = data::make_two_moons(150, 0.08, rng);
  util::Rng init{15};
  nn::Network net = nn::make_mlp({2, 8, 2}, init);
  train::TrainConfig tc;
  tc.epochs = 15;
  tc.seed = 16;
  train::fit(net, ds, ds, tc);

  const std::string path = "/tmp/bdlfi_integration_ckpt.bin";
  ASSERT_TRUE(nn::save_checkpoint(net, path));
  util::Rng init2{99};
  nn::Network restored = nn::make_mlp({2, 8, 2}, init2);
  ASSERT_TRUE(nn::load_checkpoint(restored, path));
  std::remove(path.c_str());

  auto campaign = [&](nn::Network& subject) {
    bayes::BayesianFaultNetwork bfn(subject,
                                    bayes::TargetSpec::all_parameters(),
                                    fault::AvfProfile::uniform(), ds.inputs,
                                    ds.labels);
    inject::RandomFiConfig fi;
    fi.injections = 50;
    fi.seed = 17;
    fi.workers = 2;
    return inject::run_random_fi(bfn, 1e-3, fi);
  };
  const auto a = campaign(net);
  const auto b = campaign(restored);
  EXPECT_EQ(a.error_samples, b.error_samples);
}

TEST(Integration, ActivationAndWeightCampaignsOnSameNetwork) {
  util::Rng rng{18};
  data::Dataset ds = data::make_two_moons(150, 0.08, rng);
  util::Rng init{19};
  nn::Network net = nn::make_mlp({2, 12, 2}, init);
  train::TrainConfig tc;
  tc.epochs = 20;
  tc.seed = 20;
  train::fit(net, ds, ds, tc);

  // Weight campaign via layer targeting.
  mcmc::RunnerConfig runner;
  runner.num_chains = 2;
  runner.mh.samples = 20;
  runner.seed = 21;
  const auto weight_points = inject::run_layer_campaign(
      net, ds.inputs, ds.labels, fault::AvfProfile::uniform(), 1e-3, runner);
  EXPECT_EQ(weight_points.size(), 2u);

  // Activation campaign over the same layers.
  inject::ActivationCampaignConfig ac;
  ac.injections = 10;
  ac.p = 1e-3;
  ac.seed = 22;
  const auto act_points =
      inject::run_activation_campaign(net, ds.inputs, ds.labels, ac);
  EXPECT_EQ(act_points.size(), 1u + net.num_layers());
}

}  // namespace
}  // namespace bdlfi
