// Network container: forward/backward wiring, activation hooks, parameter
// enumeration stability, cloning, ResNet/MLP builders, checkpoints.
#include "nn/network.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "nn/builders.h"
#include "nn/checkpoint.h"
#include "nn/layers.h"
#include "nn/resblock.h"
#include "util/rng.h"

namespace bdlfi::nn {
namespace {

Network tiny_mlp(std::uint64_t seed = 1) {
  util::Rng rng{seed};
  return make_mlp({2, 8, 8, 3}, rng);
}

TEST(Network, ForwardShape) {
  Network net = tiny_mlp();
  Tensor x{Shape{5, 2}};
  Tensor logits = net.forward(x);
  EXPECT_EQ(logits.shape(), Shape({5, 3}));
}

TEST(Network, LayerNamesAndKinds) {
  Network net = tiny_mlp();
  ASSERT_EQ(net.num_layers(), 5u);  // fc,relu,fc,relu,fc
  EXPECT_EQ(net.layer_name(0), "fc1");
  EXPECT_EQ(net.layer_kind(1), "relu");
  EXPECT_EQ(net.layer_name(4), "fc3");
}

TEST(Network, DuplicateLayerNameAborts) {
  Network net;
  net.add("a", std::make_unique<ReLU>());
  EXPECT_DEATH(net.add("a", std::make_unique<ReLU>()), "duplicate");
}

TEST(Network, ParamsOrderIsStable) {
  Network net = tiny_mlp();
  const auto a = net.params();
  const auto b = net.params();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].value, b[i].value);
  }
  EXPECT_EQ(a[0].name, "fc1.weight");
  EXPECT_EQ(a.back().name, "fc3.bias");
}

TEST(Network, CloneProducesIdenticalOutputsIndependentStorage) {
  util::Rng rng{7};
  Network net = tiny_mlp(7);
  Tensor x = Tensor::randn(Shape{4, 2}, rng);
  Network copy = net.clone();
  EXPECT_EQ(Tensor::max_abs_diff(net.forward(x), copy.forward(x)), 0.0f);
  // Mutating the copy leaves the original alone.
  (*copy.params()[0].value)[0] += 100.0f;
  EXPECT_NE(Tensor::max_abs_diff(net.forward(x), copy.forward(x)), 0.0f);
}

TEST(Network, ActivationHookSeesEveryLayerAndCanMutate) {
  Network net = tiny_mlp();
  Tensor x{Shape{1, 2}};
  std::vector<std::size_t> seen;
  Tensor clean = net.forward(x);
  Tensor hooked = net.forward(
      x, false, [&](std::size_t i, Tensor& act) {
        seen.push_back(i);
        if (i == 0) act.fill(0.0f);  // kill first layer's output
      });
  EXPECT_EQ(seen.size(), net.num_layers());
  // Zeroing an intermediate activation must change the logits (bias paths
  // aside, outputs differ unless the net is degenerate).
  EXPECT_EQ(seen.front(), 0u);
  (void)clean;
  (void)hooked;
}

TEST(Network, AccuracyComputesFraction) {
  Network net;
  auto dense = std::make_unique<Dense>(1, 2);
  // Identity-ish: logit_1 - logit_0 = 2x → predict 1 iff x > 0.
  dense->weight() = Tensor{Shape{2, 1}, {-1.0f, 1.0f}};
  dense->bias() = Tensor{Shape{2}};
  net.add("fc", std::move(dense));
  Tensor x{Shape{4, 1}, {-1.0f, -2.0f, 1.0f, 2.0f}};
  EXPECT_DOUBLE_EQ(net.accuracy(x, {0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(net.accuracy(x, {1, 0, 1, 0}), 0.5);
}

TEST(Builders, MlpLayerSizes) {
  util::Rng rng{1};
  Network net = make_mlp({10, 20, 5}, rng);
  EXPECT_EQ(net.num_params(), 10 * 20 + 20 + 20 * 5 + 5);
}

TEST(Builders, MlpRejectsTooFewSizes) {
  util::Rng rng{1};
  EXPECT_DEATH(make_mlp({4}, rng), "at least");
}

TEST(Builders, ResNet18TopologyAtFullWidth) {
  util::Rng rng{2};
  ResNetConfig config;
  Network net = make_resnet18(config, rng);
  // stem conv+bn+relu, 8 blocks, avgpool, fc = 13 top-level layers.
  EXPECT_EQ(net.num_layers(), 13u);
  // Canonical ResNet-18 parameter count (CIFAR stem, with BN affine):
  // ~11.17M; sanity-band check.
  const auto params = net.num_params();
  EXPECT_GT(params, 10'000'000);
  EXPECT_LT(params, 12'000'000);
}

TEST(Builders, ResNet18ForwardShape) {
  util::Rng rng{3};
  ResNetConfig config;
  config.width_multiplier = 0.125;  // keep the test fast
  config.num_classes = 10;
  Network net = make_resnet18(config, rng);
  Tensor x{Shape{2, 3, 32, 32}};
  Tensor logits = net.forward(x);
  EXPECT_EQ(logits.shape(), Shape({2, 10}));
}

TEST(Builders, ResNetWidthMultiplierScalesParams) {
  util::Rng rng{4};
  ResNetConfig narrow;
  narrow.width_multiplier = 0.125;
  ResNetConfig wide;
  wide.width_multiplier = 0.25;
  const auto n_narrow = make_resnet18(narrow, rng).num_params();
  const auto n_wide = make_resnet18(wide, rng).num_params();
  EXPECT_GT(n_wide, 3 * n_narrow);  // params scale ~quadratically in width
}

TEST(BasicBlock, ProjectionAppearsOnStride) {
  BasicBlock same(8, 8, 1);
  EXPECT_FALSE(same.has_projection());
  BasicBlock strided(8, 16, 2);
  EXPECT_TRUE(strided.has_projection());
}

TEST(BasicBlock, ForwardShapes) {
  util::Rng rng{5};
  BasicBlock block(4, 8, 2);
  block.init_he(rng);
  Tensor x = Tensor::randn(Shape{1, 4, 8, 8}, rng);
  Tensor y = block.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 8, 4, 4}));
}

TEST(BasicBlock, IdentitySkipPreservedWhenMainBranchZero) {
  // Zero conv weights + BN(γ=1, β=0, running stats identity) in eval mode →
  // main branch contributes 0; output = relu(x).
  BasicBlock block(2, 2, 1);
  std::vector<ParamRef> refs;
  block.collect_params("b.", refs);
  for (auto& r : refs) {
    if (r.role == ParamRole::kWeight) r.value->fill(0.0f);
  }
  Tensor x{Shape{1, 2, 3, 3}};
  x.fill(1.5f);
  Tensor y = block.forward(x, false);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], 1.5f, 1e-4f);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  util::Rng rng{6};
  Network net = tiny_mlp(6);
  const std::string path = "/tmp/bdlfi_ckpt_test.bin";
  ASSERT_TRUE(save_checkpoint(net, path));

  Network other = tiny_mlp(99);  // different init
  Tensor x = Tensor::randn(Shape{3, 2}, rng);
  EXPECT_NE(Tensor::max_abs_diff(net.forward(x), other.forward(x)), 0.0f);
  ASSERT_TRUE(load_checkpoint(other, path));
  EXPECT_EQ(Tensor::max_abs_diff(net.forward(x), other.forward(x)), 0.0f);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsTopologyMismatch) {
  util::Rng rng{8};
  Network net = tiny_mlp(8);
  const std::string path = "/tmp/bdlfi_ckpt_mismatch.bin";
  ASSERT_TRUE(save_checkpoint(net, path));
  Network different = make_mlp({2, 4, 3}, rng);
  EXPECT_FALSE(load_checkpoint(different, path));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMissingFile) {
  Network net = tiny_mlp();
  EXPECT_FALSE(load_checkpoint(net, "/tmp/definitely_missing_bdlfi.bin"));
}

TEST(Checkpoint, RejectsCorruptMagic) {
  const std::string path = "/tmp/bdlfi_ckpt_garbage.bin";
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  Network net = tiny_mlp();
  EXPECT_FALSE(load_checkpoint(net, path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bdlfi::nn
