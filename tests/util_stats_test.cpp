// Statistics: Welford moments, quantiles, histogram, MCMC diagnostics.
#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace bdlfi::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng{1};
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i < 400 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSet, QuantilesOfKnownData) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-12);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SampleSet, AddAfterQuantileStillCorrect) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  s.add(0.0);  // invalidates cached sort
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(50.0);   // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_NEAR(h.bin_center(0), 0.5, 1e-12);
  EXPECT_NEAR(h.bin_center(9), 9.5, 1e-12);
}

TEST(Histogram, AsciiRenders) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.1);
  h.add(0.9);
  const std::string art = h.ascii(20);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Autocorrelation, IidIsNearZero) {
  Rng rng{2};
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal());
  EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.03);
  EXPECT_DOUBLE_EQ(autocorrelation(xs, 0), 1.0);
}

TEST(Autocorrelation, Ar1IsPositive) {
  Rng rng{3};
  std::vector<double> xs{0.0};
  for (int i = 1; i < 20000; ++i) {
    xs.push_back(0.9 * xs.back() + rng.normal());
  }
  EXPECT_GT(autocorrelation(xs, 1), 0.8);
}

TEST(EffectiveSampleSize, IidNearN) {
  Rng rng{4};
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.normal());
  EXPECT_GT(effective_sample_size(xs), 3000.0);
}

TEST(EffectiveSampleSize, CorrelatedMuchSmaller) {
  Rng rng{5};
  std::vector<double> xs{0.0};
  for (int i = 1; i < 5000; ++i) xs.push_back(0.95 * xs.back() + rng.normal());
  EXPECT_LT(effective_sample_size(xs), 1000.0);
}

TEST(GelmanRubin, MixedChainsNearOne) {
  Rng rng{6};
  std::vector<std::vector<double>> chains(4);
  for (auto& c : chains) {
    for (int i = 0; i < 2000; ++i) c.push_back(rng.normal());
  }
  EXPECT_NEAR(gelman_rubin(chains), 1.0, 0.02);
}

TEST(GelmanRubin, SeparatedChainsLarge) {
  Rng rng{7};
  std::vector<std::vector<double>> chains(2);
  for (int i = 0; i < 500; ++i) {
    chains[0].push_back(rng.normal(0.0, 0.1));
    chains[1].push_back(rng.normal(10.0, 0.1));
  }
  EXPECT_GT(gelman_rubin(chains), 5.0);
}

TEST(GelmanRubin, ConstantIdenticalChainsIsOne) {
  std::vector<std::vector<double>> chains(3, std::vector<double>(10, 1.5));
  EXPECT_DOUBLE_EQ(gelman_rubin(chains), 1.0);
}

TEST(Spearman, PerfectMonotoneIsOne) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{10, 20, 30, 40, 50};
  EXPECT_NEAR(spearman_correlation(a, b), 1.0, 1e-12);
  std::vector<double> c{5, 4, 3, 2, 1};
  EXPECT_NEAR(spearman_correlation(a, c), -1.0, 1e-12);
}

TEST(Spearman, MonotoneTransformInvariant) {
  Rng rng{10};
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform();
    a.push_back(x);
    b.push_back(std::exp(3.0 * x));  // monotone map of a
  }
  EXPECT_NEAR(spearman_correlation(a, b), 1.0, 1e-12);
}

TEST(Spearman, IndependentNearZero) {
  Rng rng{11};
  std::vector<double> a, b;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(rng.normal());
    b.push_back(rng.normal());
  }
  EXPECT_NEAR(spearman_correlation(a, b), 0.0, 0.05);
}

TEST(Spearman, HeavyTiesHandledByMidranks) {
  // 90% of `a` ties at zero; correlation with a positively-associated b must
  // stay positive (the naive min-rank formula goes spuriously negative).
  Rng rng{12};
  std::vector<double> a, b;
  for (int i = 0; i < 1000; ++i) {
    const bool active = i % 10 == 0;
    const double x = active ? rng.uniform() : 0.0;
    a.push_back(x);
    b.push_back(x + 0.01 * rng.uniform());
  }
  EXPECT_GT(spearman_correlation(a, b), 0.5);
}

TEST(Spearman, ConstantInputIsZero) {
  std::vector<double> a(10, 3.0);
  std::vector<double> b{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(spearman_correlation(a, b), 0.0);
}

TEST(GewekeZ, StationaryChainSmall) {
  Rng rng{8};
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.normal());
  EXPECT_LT(std::abs(geweke_z(xs)), 3.0);
}

TEST(GewekeZ, DriftingChainLarge) {
  Rng rng{9};
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(0.01 * i + rng.normal(0.0, 0.1));
  }
  EXPECT_GT(std::abs(geweke_z(xs)), 5.0);
}

}  // namespace
}  // namespace bdlfi::util
