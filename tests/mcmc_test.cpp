// MCMC machinery: proposal correctness, MH/Gibbs stationary behaviour
// (mean #flips under the prior must match the Bernoulli expectation),
// multi-chain diagnostics and the completeness stopper.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bayes/targets.h"
#include "data/toy2d.h"
#include "mcmc/gibbs.h"
#include "mcmc/mh.h"
#include "mcmc/proposals.h"
#include "mcmc/runner.h"
#include "nn/builders.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace bdlfi::mcmc {
namespace {

class McmcTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng{1};
    data_ = new data::Dataset(data::make_two_moons(200, 0.08, rng));
    util::Rng init{2};
    net_ = new nn::Network(nn::make_mlp({2, 12, 2}, init));
    train::TrainConfig config;
    config.epochs = 25;
    config.lr = 0.05;
    config.seed = 3;
    train::fit(*net_, *data_, *data_, config);
    bfn_ = new bayes::BayesianFaultNetwork(
        *net_, bayes::TargetSpec::all_parameters(),
        fault::AvfProfile::uniform(), data_->inputs, data_->labels);
  }
  static void TearDownTestSuite() {
    delete bfn_;
    delete net_;
    delete data_;
  }

  static nn::Network* net_;
  static data::Dataset* data_;
  static bayes::BayesianFaultNetwork* bfn_;
};

nn::Network* McmcTest::net_ = nullptr;
data::Dataset* McmcTest::data_ = nullptr;
bayes::BayesianFaultNetwork* McmcTest::bfn_ = nullptr;

TEST_F(McmcTest, SingleToggleChangesExactlyOneBit) {
  SingleToggleKernel kernel;
  util::Rng rng{4};
  fault::FaultMask current({5, 99});
  const Proposal prop = kernel.propose(current, *bfn_, 1e-3, rng);
  EXPECT_EQ(fault::FaultMask::symmetric_difference(current, prop.next).size(),
            1u);
  EXPECT_DOUBLE_EQ(prop.log_q_ratio, 0.0);
}

TEST_F(McmcTest, BlockResampleQRatioCancelsPrior) {
  // For any block move, log_q_ratio must equal -(prior(next) - prior(cur)),
  // making prior-only acceptance exactly 1.
  BlockResampleKernel kernel(16);
  util::Rng rng{5};
  const double p = 1e-3;
  fault::FaultMask current = bfn_->sample_prior_mask(p, rng);
  for (int i = 0; i < 20; ++i) {
    const Proposal prop = kernel.propose(current, *bfn_, p, rng);
    const double prior_delta =
        bfn_->log_prior(prop.next, p) - bfn_->log_prior(current, p);
    EXPECT_NEAR(prop.log_q_ratio, -prior_delta, 1e-6);
    current = prop.next;
  }
}

TEST_F(McmcTest, IndependenceQRatioCancelsPrior) {
  IndependenceKernel kernel;
  util::Rng rng{6};
  const double p = 1e-3;
  const fault::FaultMask current = bfn_->sample_prior_mask(p, rng);
  const Proposal prop = kernel.propose(current, *bfn_, p, rng);
  const double prior_delta =
      bfn_->log_prior(prop.next, p) - bfn_->log_prior(current, p);
  EXPECT_NEAR(prop.log_q_ratio, -prior_delta, 1e-6);
}

TEST_F(McmcTest, MhUnderPriorMatchesBernoulliFlipRate) {
  // Stationary distribution check: E[#flips] = p * total_bits.
  const double p = 2e-4;
  bayes::PriorTarget target(*bfn_, p);
  MhConfig config;
  config.samples = 1500;
  config.burn_in = 100;
  config.thin = 3;
  config.seed = 7;
  MhSampler sampler(*bfn_, target, p, config);
  const ChainResult chain = sampler.run();
  ASSERT_EQ(chain.error_samples.size(), 1500u);
  double mean_flips = 0.0;
  for (double f : chain.flips_samples) mean_flips += f;
  mean_flips /= 1500.0;
  const double expected = p * static_cast<double>(bfn_->space().total_bits());
  EXPECT_NEAR(mean_flips, expected, 0.25 * expected + 0.05);
  EXPECT_GT(chain.acceptance_rate, 0.2);
}

TEST_F(McmcTest, MhErrorSamplesBracketGolden) {
  const double p = 1e-4;
  bayes::PriorTarget target(*bfn_, p);
  MhConfig config;
  config.samples = 100;
  config.seed = 8;
  MhSampler sampler(*bfn_, target, p, config);
  const ChainResult chain = sampler.run();
  for (double e : chain.error_samples) {
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 100.0);
  }
}

TEST_F(McmcTest, GibbsUnderPriorMatchesBernoulliFlipRate) {
  // Gibbs over the prior: after enough sweeps the per-bit marginals are
  // exactly Bernoulli(p); #flips per retained sample should track p*bits.
  const double p = 5e-4;
  bayes::PriorTarget target(*bfn_, p);
  GibbsConfig config;
  config.samples = 300;
  config.burn_in = 5;
  config.coordinates_per_sweep = 128;
  config.seed = 9;
  GibbsSampler sampler(*bfn_, target, p, config);
  const ChainResult chain = sampler.run();
  double mean_flips = 0.0;
  for (double f : chain.flips_samples) mean_flips += f;
  mean_flips /= static_cast<double>(chain.flips_samples.size());
  const double expected = p * static_cast<double>(bfn_->space().total_bits());
  EXPECT_NEAR(mean_flips, expected, 0.35 * expected + 0.5);
}

TEST_F(McmcTest, DeterministicForSameSeed) {
  const double p = 1e-3;
  auto run_once = [&] {
    bayes::PriorTarget target(*bfn_, p);
    MhConfig config;
    config.samples = 50;
    config.seed = 10;
    return MhSampler(*bfn_, target, p, config).run();
  };
  const ChainResult a = run_once();
  const ChainResult b = run_once();
  EXPECT_EQ(a.error_samples, b.error_samples);
  EXPECT_EQ(a.flips_samples, b.flips_samples);
}

TEST_F(McmcTest, RunChainsPoolsAndDiagnoses) {
  const double p = 1e-3;
  RunnerConfig config;
  config.num_chains = 4;
  config.mh.samples = 80;
  config.mh.burn_in = 20;
  config.seed = 11;
  TargetFactory factory = [p](bayes::BayesianFaultNetwork& net) {
    return std::make_unique<bayes::PriorTarget>(net, p);
  };
  const CampaignResult result = run_chains(*bfn_, factory, p, config);
  EXPECT_EQ(result.chains.size(), 4u);
  EXPECT_EQ(result.total_samples, 4u * 80u);
  EXPECT_GT(result.diagnostics.ess, 10.0);
  // Independent, well-specified chains on the same target must mix.
  EXPECT_LT(result.diagnostics.rhat, 1.3);
  EXPECT_GE(result.q95, result.q50);
  EXPECT_GE(result.q50, result.q05);
  EXPECT_GE(result.mean_error, 0.0);
}

TEST_F(McmcTest, RunChainsDeterministicAcrossThreadCounts) {
  const double p = 1e-3;
  RunnerConfig config;
  config.num_chains = 3;
  config.mh.samples = 30;
  config.seed = 12;
  TargetFactory factory = [p](bayes::BayesianFaultNetwork& net) {
    return std::make_unique<bayes::PriorTarget>(net, p);
  };
  const CampaignResult a = run_chains(*bfn_, factory, p, config);
  const CampaignResult b = run_chains(*bfn_, factory, p, config);
  ASSERT_EQ(a.chains.size(), b.chains.size());
  for (std::size_t c = 0; c < a.chains.size(); ++c) {
    EXPECT_EQ(a.chains[c].error_samples, b.chains[c].error_samples);
  }
}

TEST_F(McmcTest, GibbsRunnerPathWorks) {
  const double p = 1e-3;
  RunnerConfig config;
  config.num_chains = 2;
  config.use_gibbs = true;
  config.gibbs.samples = 30;
  config.gibbs.coordinates_per_sweep = 64;
  config.seed = 13;
  TargetFactory factory = [p](bayes::BayesianFaultNetwork& net) {
    return std::make_unique<bayes::PriorTarget>(net, p);
  };
  const CampaignResult result = run_chains(*bfn_, factory, p, config);
  EXPECT_EQ(result.total_samples, 60u);
}

TEST_F(McmcTest, CompletenessConvergesOnEasyTarget) {
  const double p = 1e-3;
  RunnerConfig config;
  config.num_chains = 4;
  config.mh.samples = 60;
  config.mh.burn_in = 20;
  config.seed = 14;
  TargetFactory factory = [p](bayes::BayesianFaultNetwork& net) {
    return std::make_unique<bayes::PriorTarget>(net, p);
  };
  CompletenessCriterion criterion;
  criterion.rhat_threshold = 1.1;
  criterion.mean_rel_tol = 0.2;
  criterion.max_rounds = 6;
  const CompletenessResult result =
      run_until_complete(*bfn_, factory, p, config, criterion);
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.rounds, 2u);  // needs at least two rounds to see stability
  EXPECT_EQ(result.trajectory.size(), result.rounds);
  // Samples accumulate monotonically across rounds.
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_GT(result.trajectory[i].cumulative_samples,
              result.trajectory[i - 1].cumulative_samples);
  }
}

TEST(MhConfigValidation, RejectsDegenerateP) {
  util::Rng rng{1};
  data::Dataset ds = data::make_blobs(20, 2, 3.0, 0.2, rng);
  nn::Network net = nn::make_mlp({2, 4, 2}, rng);
  bayes::BayesianFaultNetwork bfn(net, bayes::TargetSpec::all_parameters(),
                                  fault::AvfProfile::uniform(), ds.inputs,
                                  ds.labels);
  bayes::PriorTarget target(bfn, 0.5);
  MhConfig config;
  EXPECT_DEATH(MhSampler(bfn, target, 0.0, config), "p >");
}

}  // namespace
}  // namespace bdlfi::mcmc
