// Kernel-backend parity suite (DESIGN.md §8): every KernelBackend entry is
// swept over randomized shapes and compared against the scalar reference —
// exactly equal where the contract promises bit-identical semantics
// (elementwise, softmax, argmax, mask XOR), and within an FMA rounding bound
// against a double-precision oracle where it does not (gemm, axpy).
//
// The vectorized half of every parity test self-skips on CPUs without
// AVX2+FMA; the registry and scalar-oracle halves always run.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "tensor/backend/backend.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace bdlfi::tensor::backend {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

std::vector<float> random_vec(util::Rng& rng, std::size_t n,
                              double scale = 2.0) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(scale * (rng.uniform() - 0.5));
  return v;
}

const KernelBackend* vector_backend_or_skip_marker() {
#if defined(__x86_64__) || defined(_M_X64)
  if (avx2_supported()) return &avx2_backend();
#endif
  return nullptr;
}

#define VECTOR_BACKEND_OR_SKIP(var)                                    \
  const KernelBackend* var = vector_backend_or_skip_marker();          \
  if (var == nullptr) GTEST_SKIP() << "CPU/build lacks the AVX2 table"

// ---------------------------------------------------------------------------
// Registry behavior.

TEST(BackendRegistry, ScalarIsAlwaysAvailableAndRestorable) {
  const auto names = available();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "scalar");
  EXPECT_TRUE(set_active("scalar"));
  EXPECT_STREQ(active_name(), "scalar");
  EXPECT_EQ(active().gemm_rows, scalar_backend().gemm_rows);
}

TEST(BackendRegistry, UnknownNameIsRejectedWithoutSwitching) {
  ASSERT_TRUE(set_active("scalar"));
  std::string error;
  EXPECT_FALSE(set_active("sse9000", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_STREQ(active_name(), "scalar");
}

TEST(BackendRegistry, AutoPicksTheBestSupportedTable) {
  std::string error;
  ASSERT_TRUE(set_active("auto", &error)) << error;
  if (avx2_supported()) {
    EXPECT_STREQ(active_name(), "avx2");
  } else {
    EXPECT_STREQ(active_name(), "scalar");
  }
  ASSERT_TRUE(set_active("scalar"));  // restore the suite-wide default
}

TEST(BackendRegistry, Avx2RequiresCpuSupport) {
  std::string error;
  const bool ok = set_active("avx2", &error);
  EXPECT_EQ(ok, avx2_supported());
  if (!ok) {
    EXPECT_FALSE(error.empty());
  }
  ASSERT_TRUE(set_active("scalar"));
}

// ---------------------------------------------------------------------------
// GEMM: both tables against a double-precision oracle, all transpose flags.

void reference_gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
                    std::int64_t k, float alpha, const std::vector<float>& a,
                    const std::vector<float>& b, float beta,
                    std::vector<float>& c) {
  const std::int64_t lda = trans_a ? m : k;
  const std::int64_t ldb = trans_b ? k : n;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float aik = trans_a ? a[kk * lda + i] : a[i * lda + kk];
        const float bkj = trans_b ? b[j * ldb + kk] : b[kk * ldb + j];
        acc += static_cast<double>(aik) * static_cast<double>(bkj);
      }
      const double base =
          beta == 0.0f ? 0.0 : static_cast<double>(beta) * c[i * n + j];
      c[i * n + j] = static_cast<float>(base + alpha * acc);
    }
  }
}

void check_gemm_against_oracle(const KernelBackend& be, bool trans_a,
                               bool trans_b, std::int64_t m, std::int64_t n,
                               std::int64_t k, float alpha, float beta,
                               util::Rng& rng) {
  const auto a = random_vec(rng, static_cast<std::size_t>(m * k));
  const auto b = random_vec(rng, static_cast<std::size_t>(k * n));
  auto c = random_vec(rng, static_cast<std::size_t>(m * n));
  auto expected = c;
  reference_gemm(trans_a, trans_b, m, n, k, alpha, a, b, beta, expected);
  const std::int64_t lda = trans_a ? m : k;
  const std::int64_t ldb = trans_b ? k : n;
  be.gemm_rows(trans_a, trans_b, 0, m, n, k, alpha, a.data(), lda, b.data(),
               ldb, beta, c.data(), n);
  // FMA vs separate rounding: each of the k products carries at most one
  // half-ulp difference, so bound the error relative to the accumulated
  // magnitude rather than demanding bit equality.
  const double tol = 1e-5 * (std::sqrt(static_cast<double>(k)) + 4.0);
  for (std::int64_t i = 0; i < m * n; ++i) {
    const double mag =
        std::max(1.0, std::abs(static_cast<double>(expected[i])));
    ASSERT_NEAR(c[i], expected[i], tol * mag)
        << be.name << " ta=" << trans_a << " tb=" << trans_b << " m=" << m
        << " n=" << n << " k=" << k << " i=" << i;
  }
}

TEST(BackendParity, GemmMatchesDoubleOracleOverRandomShapes) {
  util::Rng rng{101};
  const KernelBackend* vec = vector_backend_or_skip_marker();
  for (int round = 0; round < 24; ++round) {
    const std::int64_t m = 1 + static_cast<std::int64_t>(rng() % 17);
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng() % 33);
    const std::int64_t k = 1 + static_cast<std::int64_t>(rng() % 47);
    const bool trans_a = (rng() & 1) != 0;
    const bool trans_b = (rng() & 1) != 0;
    const float alpha = (round % 5 == 0) ? -0.5f : 1.0f;
    const float beta = (round % 3 == 0) ? 0.0f : (round % 3 == 1 ? 1.0f : 0.25f);
    check_gemm_against_oracle(scalar_backend(), trans_a, trans_b, m, n, k,
                              alpha, beta, rng);
    if (vec != nullptr) {
      check_gemm_against_oracle(*vec, trans_a, trans_b, m, n, k, alpha, beta,
                                rng);
    }
  }
}

TEST(BackendParity, GemmBetaZeroIgnoresGarbageC) {
  // beta == 0 must overwrite C even when it holds NaN (freshly allocated
  // buffers are not zeroed); 0 * NaN would otherwise poison the result.
  util::Rng rng{102};
  const std::int64_t m = 7, n = 19, k = 11;
  const auto a = random_vec(rng, m * k);
  const auto b = random_vec(rng, k * n);
  auto check = [&](const KernelBackend& be) {
    std::vector<float> c(static_cast<std::size_t>(m * n), kNan);
    be.gemm_rows(false, false, 0, m, n, k, 1.0f, a.data(), k, b.data(), n,
                 0.0f, c.data(), n);
    for (const float v : c) ASSERT_TRUE(std::isfinite(v)) << be.name;
  };
  check(scalar_backend());
  VECTOR_BACKEND_OR_SKIP(vec);
  check(*vec);
}

// ---------------------------------------------------------------------------
// Elementwise kernels: bit-identical to scalar, NaN policy included.

TEST(BackendParity, AddAndAddConstAndBiasAreExact) {
  VECTOR_BACKEND_OR_SKIP(vec);
  util::Rng rng{103};
  for (const std::size_t n : {1u, 7u, 8u, 9u, 64u, 1000u}) {
    const auto x = random_vec(rng, n);
    auto a = random_vec(rng, n);
    auto b = a;
    scalar_backend().add(a.data(), x.data(), static_cast<std::int64_t>(n));
    vec->add(b.data(), x.data(), static_cast<std::int64_t>(n));
    EXPECT_EQ(a, b) << "add n=" << n;

    a = b;
    auto a2 = a;
    scalar_backend().add_const(a.data(), 0.375f,
                               static_cast<std::int64_t>(n));
    vec->add_const(a2.data(), 0.375f, static_cast<std::int64_t>(n));
    EXPECT_EQ(a, a2) << "add_const n=" << n;
  }
  const std::int64_t rows = 5, cols = 37;
  const auto bias = random_vec(rng, cols);
  auto m1 = random_vec(rng, rows * cols);
  auto m2 = m1;
  scalar_backend().bias_add_rows(m1.data(), bias.data(), rows, cols);
  vec->bias_add_rows(m2.data(), bias.data(), rows, cols);
  EXPECT_EQ(m1, m2);
}

TEST(BackendParity, ReluAndBackwardMatchScalarIncludingNaN) {
  VECTOR_BACKEND_OR_SKIP(vec);
  util::Rng rng{104};
  for (const std::size_t n : {3u, 8u, 23u, 256u}) {
    auto x = random_vec(rng, n);
    if (n >= 8) {
      x[1] = kNan;
      x[5] = -kInf;
      x[6] = kInf;
      x[7] = -0.0f;
    }
    auto y = x;
    scalar_backend().relu(x.data(), static_cast<std::int64_t>(n));
    vec->relu(y.data(), static_cast<std::int64_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(x[i]),
                std::bit_cast<std::uint32_t>(y[i]))
          << "relu n=" << n << " i=" << i;
    }

    auto z = random_vec(rng, n);
    if (n >= 8) {
      z[2] = kNan;  // scalar keeps the gradient when z is NaN (!(z <= 0))
      z[3] = 0.0f;
      z[4] = -0.0f;
    }
    auto g1 = random_vec(rng, n);
    auto g2 = g1;
    scalar_backend().relu_backward(g1.data(), z.data(),
                                   static_cast<std::int64_t>(n));
    vec->relu_backward(g2.data(), z.data(), static_cast<std::int64_t>(n));
    EXPECT_EQ(g1, g2) << "relu_backward n=" << n;
  }
}

TEST(BackendParity, AxpyWithinFmaRounding) {
  VECTOR_BACKEND_OR_SKIP(vec);
  util::Rng rng{105};
  for (const std::size_t n : {1u, 8u, 17u, 500u}) {
    const auto x = random_vec(rng, n);
    auto a = random_vec(rng, n);
    auto b = a;
    scalar_backend().axpy(a.data(), 1.5f, x.data(),
                          static_cast<std::int64_t>(n));
    vec->axpy(b.data(), 1.5f, x.data(), static_cast<std::int64_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(a[i], b[i], 1e-5 * std::max(1.0f, std::abs(a[i])))
          << "axpy n=" << n << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Softmax / argmax: exact parity, corrupt rows included.

TEST(BackendParity, SoftmaxRowExactParity) {
  VECTOR_BACKEND_OR_SKIP(vec);
  util::Rng rng{106};
  std::vector<std::vector<float>> rows;
  for (const std::size_t n : {2u, 7u, 8u, 10u, 100u}) {
    rows.push_back(random_vec(rng, n, 8.0));
  }
  rows.push_back({1.0f, kInf, 3.0f, kInf, -2.0f, 0.0f, 1.0f, 2.0f});  // ties
  rows.push_back(std::vector<float>(12, kNan));                 // all NaN
  rows.push_back(std::vector<float>(9, -kInf));                 // all -inf
  rows.push_back({88.0f, 89.0f, 90.0f, 91.0f, 87.5f, 90.5f, 1.0f, 2.0f,
                  3.0f});  // large logits: exp overflow guarded by max-shift
  for (const auto& row : rows) {
    const auto cols = static_cast<std::int64_t>(row.size());
    std::vector<float> o1(row.size()), o2(row.size());
    scalar_backend().softmax_row(row.data(), o1.data(), cols);
    vec->softmax_row(row.data(), o2.data(), cols);
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(o1[i]),
                std::bit_cast<std::uint32_t>(o2[i]))
          << "cols=" << cols << " i=" << i;
    }
  }
}

TEST(BackendParity, ArgmaxFiniteRowExactParity) {
  VECTOR_BACKEND_OR_SKIP(vec);
  util::Rng rng{107};
  std::vector<std::vector<float>> rows;
  for (const std::size_t n : {1u, 2u, 10u, 15u, 16u, 17u, 40u, 129u}) {
    rows.push_back(random_vec(rng, n, 6.0));
  }
  {
    auto tie = random_vec(rng, 48, 1.0);
    tie[7] = tie[29] = tie[41] = 5.0f;  // the first max index must win
    rows.push_back(tie);
    auto nan_first = random_vec(rng, 32, 1.0);
    nan_first[0] = kNan;  // NaN incumbent at index 0 is never displaced
    nan_first[20] = 9.0f;
    rows.push_back(nan_first);
    auto nan_late = random_vec(rng, 32, 1.0);
    nan_late[31] = kNan;
    rows.push_back(nan_late);
    auto has_inf = random_vec(rng, 24, 1.0);
    has_inf[13] = kInf;
    rows.push_back(has_inf);
    rows.push_back(std::vector<float>(64, -3.25f));  // total tie → index 0
  }
  for (const auto& row : rows) {
    const auto cols = static_cast<std::int64_t>(row.size());
    std::int64_t b1 = -1, b2 = -1;
    bool f1 = true, f2 = true;
    scalar_backend().argmax_finite_row(row.data(), cols, &b1, &f1);
    vec->argmax_finite_row(row.data(), cols, &b2, &f2);
    EXPECT_EQ(b1, b2) << "cols=" << cols;
    EXPECT_EQ(f1, f2) << "cols=" << cols;
  }
}

TEST(BackendParity, MaskXorIsSelfInverseOnBothTables) {
  util::Rng rng{108};
  auto data = random_vec(rng, 40);
  const auto original = data;
  std::vector<float*> ptrs;
  std::vector<std::uint32_t> masks;
  for (std::size_t i = 0; i < data.size(); i += 3) {
    ptrs.push_back(&data[i]);
    masks.push_back(std::uint32_t{1} << (i % 32));
  }
  const KernelBackend* tables[] = {&scalar_backend(),
                                   vector_backend_or_skip_marker()};
  for (const KernelBackend* be : tables) {
    if (be == nullptr) continue;
    be->mask_xor(ptrs.data(), masks.data(), ptrs.size());
    for (std::size_t i = 0; i < data.size(); i += 3) {
      EXPECT_NE(std::bit_cast<std::uint32_t>(data[i]),
                std::bit_cast<std::uint32_t>(original[i]));
    }
    be->mask_xor(ptrs.data(), masks.data(), ptrs.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(data[i]),
                std::bit_cast<std::uint32_t>(original[i]))
          << be->name << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatched tensor ops agree across backends (the rewired call sites).

TEST(BackendDispatch, GemmThroughActiveBackendMatchesScalar) {
  if (!avx2_supported()) GTEST_SKIP() << "CPU/build lacks the AVX2 table";
  util::Rng rng{109};
  Tensor a{Shape{13, 21}}, b{Shape{21, 18}};
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a.data()[i] = static_cast<float>(rng.uniform() - 0.5);
  }
  for (std::int64_t i = 0; i < b.numel(); ++i) {
    b.data()[i] = static_cast<float>(rng.uniform() - 0.5);
  }
  ASSERT_TRUE(set_active("scalar"));
  Tensor c_scalar = matmul(a, b);
  ASSERT_TRUE(set_active("avx2"));
  Tensor c_avx2 = matmul(a, b);
  ASSERT_TRUE(set_active("scalar"));
  for (std::int64_t i = 0; i < c_scalar.numel(); ++i) {
    EXPECT_NEAR(c_scalar.data()[i], c_avx2.data()[i], 1e-4)
        << "i=" << i;
  }
}

// ---------------------------------------------------------------------------
// Satellite bugfix: maxpool floor division on non-divisible spatial dims.

TEST(MaxpoolFloorDivision, NonDivisibleSpatialDimsDropRemainder) {
  // 1x1x5x5 input, kernel 2 → 2x2 output; row/col 4 fall outside every
  // window and must not influence the result (previously a hard CHECK fail).
  Tensor input = Tensor::arange(Shape{1, 1, 5, 5});
  input.data()[4] = 1000.0f;  // in the dropped last column: must be ignored
  std::vector<std::int64_t> argmax;
  const Tensor out = maxpool2d_forward(input, 2, argmax);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  // Window maxima of the 4x4 covered region: max at bottom-right of each.
  EXPECT_FLOAT_EQ(out.data()[0], 6.0f);
  EXPECT_FLOAT_EQ(out.data()[1], 8.0f);
  EXPECT_FLOAT_EQ(out.data()[2], 16.0f);
  EXPECT_FLOAT_EQ(out.data()[3], 18.0f);

  // Backward routes gradients through the recorded argmax indices only.
  Tensor grad_out = Tensor::full(out.shape(), 1.0f);
  const Tensor grad_in =
      maxpool2d_backward(grad_out, input.shape(), argmax);
  ASSERT_EQ(grad_in.shape(), input.shape());
  double total = 0.0;
  for (std::int64_t i = 0; i < grad_in.numel(); ++i) {
    total += grad_in.data()[i];
  }
  EXPECT_DOUBLE_EQ(total, 4.0);
  EXPECT_EQ(grad_in.data()[4], 0.0f);  // dropped column got no gradient
}

TEST(MaxpoolFloorDivision, InputSmallerThanWindowStillFails) {
  Tensor input{Shape{1, 1, 1, 1}};
  std::vector<std::int64_t> argmax;
  EXPECT_DEATH((void)maxpool2d_forward(input, 2, argmax), "pooling window");
}

}  // namespace
}  // namespace bdlfi::tensor::backend
