// Fleet orchestration: spec parsing/expansion determinism, checkpoint-dir
// locking, the worker's deterministic result document, and the crash-tolerant
// multiprocess runner — SIGKILL mid-round resumes to a byte-identical pooled
// result, retry exhaustion quarantines the campaign without failing the rest,
// and a held lock rejects a second campaign on the same checkpoint dir.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bayes/targets.h"
#include "data/toy2d.h"
#include "fleet/runner.h"
#include "fleet/spec.h"
#include "fleet/worker.h"
#include "mcmc/checkpoint.h"
#include "mcmc/runner.h"
#include "nn/builders.h"
#include "nn/checkpoint.h"
#include "obs/json.h"
#include "train/trainer.h"
#include "util/interrupt.h"
#include "util/rng.h"

namespace bdlfi::fleet {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "bdlfi_fleet_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& body) {
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  std::ofstream out(path, std::ios::binary);
  out << body;
}

/// Every line of a JSONL file must be a strict JSON object.
void expect_valid_jsonl(const std::string& path) {
  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty()) << path;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::string error;
    const auto doc = obs::json_parse(line, &error);
    ASSERT_TRUE(doc.has_value()) << path << ": " << error << ": " << line;
    EXPECT_TRUE(doc->is_object());
  }
}

// ---------------------------------------------------------------------------
// Spec parsing and expansion.

TEST(FleetSpec, ExpandsAxisCrossProductDeterministically) {
  const std::string text = R"({
    "schema": "bdlfi_fleet_spec", "version": 1,
    "defaults": {"ckpt": "golden.ckpt", "chains": 2, "seed": 5},
    "campaigns": [
      {"name": "c", "p": [1e-3, 2e-3], "abft": ["off", "detect"]}
    ]})";
  std::string error;
  const auto fleet = parse_fleet_spec(text, &error);
  ASSERT_TRUE(fleet.has_value()) << error;
  ASSERT_EQ(fleet->campaigns.size(), 4u);

  // Expansion order is the fixed axis order (p before abft), first axis
  // fastest — independent of JSON member ordering.
  EXPECT_EQ(fleet->campaigns[0].name, "c-p=0.001-abft=off");
  EXPECT_EQ(fleet->campaigns[1].name, "c-p=0.002-abft=off");
  EXPECT_EQ(fleet->campaigns[2].name, "c-p=0.001-abft=detect");
  EXPECT_EQ(fleet->campaigns[3].name, "c-p=0.002-abft=detect");
  EXPECT_DOUBLE_EQ(fleet->campaigns[1].p, 2e-3);
  EXPECT_EQ(fleet->campaigns[2].abft, "detect");

  // Defaults flow into every expanded campaign.
  for (const CampaignSpec& c : fleet->campaigns) {
    EXPECT_EQ(c.ckpt, "golden.ckpt");
    EXPECT_EQ(c.chains, 2u);
    EXPECT_EQ(c.seed, 5u);
    ASSERT_EQ(c.id.size(), 16u) << c.name;
  }
  // Ids are distinct per campaign and stable across parses.
  const auto again = parse_fleet_spec(text, &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(fleet->id, again->id);
  EXPECT_EQ(fleet->id.size(), 16u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fleet->campaigns[i].id, again->campaigns[i].id);
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_NE(fleet->campaigns[i].id, fleet->campaigns[j].id);
    }
  }
}

TEST(FleetSpec, SingleValuedAxisGetsNoSuffixAndEmptyLayerNamesNone) {
  const std::string text = R"({
    "schema": "bdlfi_fleet_spec", "version": 1,
    "campaigns": [
      {"name": "solo", "ckpt": "g.ckpt", "p": [1e-3]},
      {"name": "sweep", "ckpt": "g.ckpt", "layer": ["", "fc1"]}
    ]})";
  std::string error;
  const auto fleet = parse_fleet_spec(text, &error);
  ASSERT_TRUE(fleet.has_value()) << error;
  ASSERT_EQ(fleet->campaigns.size(), 3u);
  EXPECT_EQ(fleet->campaigns[0].name, "solo");
  EXPECT_DOUBLE_EQ(fleet->campaigns[0].p, 1e-3);
  EXPECT_EQ(fleet->campaigns[1].name, "sweep-layer=none");
  EXPECT_EQ(fleet->campaigns[1].layer, "");
  EXPECT_EQ(fleet->campaigns[2].name, "sweep-layer=fc1");
  EXPECT_EQ(fleet->campaigns[2].layer, "fc1");
}

TEST(FleetSpec, CampaignOverridesDefaults) {
  const std::string text = R"({
    "schema": "bdlfi_fleet_spec", "version": 1,
    "workers": 3, "worker_timeout_ms": 1500, "max_worker_retries": 7,
    "defaults": {"ckpt": "g.ckpt", "seed": 5, "chains": 8},
    "campaigns": [{"name": "c", "seed": 9}]})";
  std::string error;
  const auto fleet = parse_fleet_spec(text, &error);
  ASSERT_TRUE(fleet.has_value()) << error;
  EXPECT_EQ(fleet->workers, 3u);
  EXPECT_DOUBLE_EQ(fleet->worker_timeout_ms, 1500.0);
  EXPECT_EQ(fleet->max_worker_retries, 7u);
  ASSERT_EQ(fleet->campaigns.size(), 1u);
  EXPECT_EQ(fleet->campaigns[0].seed, 9u);   // campaign wins
  EXPECT_EQ(fleet->campaigns[0].chains, 8u);  // default survives
}

TEST(FleetSpec, RejectsMalformedSpecs) {
  const auto reject = [](const std::string& text,
                         const std::string& fragment) {
    std::string error;
    const auto fleet = parse_fleet_spec(text, &error);
    EXPECT_FALSE(fleet.has_value()) << text;
    EXPECT_NE(error.find(fragment), std::string::npos)
        << "error was: " << error;
  };
  const std::string head = R"({"schema": "bdlfi_fleet_spec", "version": 1,)";

  reject(R"({"version": 1, "campaigns": [{"name":"c","ckpt":"g"}]})",
         "missing required key 'schema'");
  reject(R"({"schema": "bdlfi_fleet_spec",
             "campaigns": [{"name":"c","ckpt":"g"}]})",
         "missing required key 'version'");
  reject(R"({"schema": "other", "version": 1, "campaigns": []})",
         "unexpected schema");
  reject(R"({"schema": "bdlfi_fleet_spec", "version": 99, "campaigns": []})",
         "unsupported fleet spec version");
  reject(head + R"("campaigns": []})", "non-empty");
  reject(head + R"("bogus": 1, "campaigns": [{"name":"c","ckpt":"g"}]})",
         "unknown top-level key 'bogus'");
  reject(head + R"("campaigns": [{"name":"c","ckpt":"g","bogus":1}]})",
         "unknown campaign key 'bogus'");
  reject(head + R"("defaults": {"bogus": 1},
                   "campaigns": [{"name":"c","ckpt":"g"}]})",
         "unknown campaign key 'bogus'");
  reject(head + R"("campaigns": [{"name":"c","ckpt":"g","chains":[2,4]}]})",
         "cannot be an array");
  reject(head + R"("campaigns": [{"name":"c","ckpt":"g","p":[]}]})",
         "must not be empty");
  reject(head + R"("campaigns": [{"name":"c","ckpt":"g"},
                                 {"name":"c","ckpt":"g"}]})",
         "duplicate campaign name");
  reject(head + R"("campaigns": [{"name":"c"}]})", "'ckpt' is required");
  reject(head + R"("campaigns": [{"name":"c","ckpt":"g","p":1.5}]})",
         "'p' must be in (0, 1)");
  reject(head + R"("campaigns": [{"name":"c","ckpt":"g","avf":"bogus"}]})",
         "unknown avf");
  reject(head + R"("campaigns": [{"name":"bad name","ckpt":"g"}]})",
         "name contains");
  reject(head + R"("campaigns": [{"name":"c","ckpt":"g","chains":2.5}]})",
         "non-negative integer");
  reject("{nope", "not valid JSON");
}

TEST(FleetSpec, LoadReadsFileAndReportsMissingPath) {
  const std::string dir = fresh_dir("spec_io");
  const std::string path = dir + "/fleet.json";
  write_file(path, R"({"schema": "bdlfi_fleet_spec", "version": 1,
                       "campaigns": [{"name":"c","ckpt":"g.ckpt"}]})");
  std::string error;
  const auto fleet = load_fleet_spec(path, &error);
  ASSERT_TRUE(fleet.has_value()) << error;
  EXPECT_EQ(fleet->campaigns.size(), 1u);

  EXPECT_FALSE(load_fleet_spec(dir + "/absent.json", &error).has_value());
  EXPECT_NE(error.find("cannot read"), std::string::npos);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Checkpoint-directory lock.

TEST(CheckpointDirLock, SecondAcquireFailsWhileHeldAndReleaseFrees) {
  const std::string dir = fresh_dir("lock_contention");
  std::string error;
  mcmc::CheckpointDirLock first = mcmc::CheckpointDirLock::acquire(dir, &error);
  ASSERT_TRUE(first.held()) << error;
  EXPECT_TRUE(std::filesystem::exists(mcmc::checkpoint_lock_path(dir)));

  mcmc::CheckpointDirLock second =
      mcmc::CheckpointDirLock::acquire(dir, &error);
  EXPECT_FALSE(second.held());
  EXPECT_NE(error.find("locked by pid"), std::string::npos) << error;

  first.release();
  EXPECT_FALSE(std::filesystem::exists(mcmc::checkpoint_lock_path(dir)));
  mcmc::CheckpointDirLock third = mcmc::CheckpointDirLock::acquire(dir, &error);
  EXPECT_TRUE(third.held()) << error;
  std::filesystem::remove_all(dir);
}

TEST(CheckpointDirLock, StaleAndUnparseableLocksAreBroken) {
  const std::string dir = fresh_dir("lock_stale");
  // A pid beyond any real pid table: the owner cannot exist.
  write_file(mcmc::checkpoint_lock_path(dir), "999999999\n");
  std::string error;
  {
    mcmc::CheckpointDirLock lock = mcmc::CheckpointDirLock::acquire(dir, &error);
    EXPECT_TRUE(lock.held()) << error;
  }
  // A torn/garbage lock file can only come from a dead owner.
  write_file(mcmc::checkpoint_lock_path(dir), "not-a-pid");
  mcmc::CheckpointDirLock lock = mcmc::CheckpointDirLock::acquire(dir, &error);
  EXPECT_TRUE(lock.held()) << error;
  std::filesystem::remove_all(dir);
}

TEST(CheckpointDirLock, RunUntilCompleteRejectsLockedDir) {
  util::Rng data_rng{1};
  data::Dataset data = data::make_two_moons(60, 0.08, data_rng);
  util::Rng init_rng{2};
  nn::Network net = nn::make_mlp({2, 8, 2}, init_rng);
  bayes::BayesianFaultNetwork bfn(net, bayes::TargetSpec::all_parameters(),
                                  bayes::AvfProfile::uniform(), data.inputs,
                                  data.labels);
  const double p = 1e-3;
  mcmc::TargetFactory factory = [p](bayes::BayesianFaultNetwork& n) {
    return std::make_unique<bayes::PriorTarget>(n, p);
  };
  mcmc::RunnerConfig config;
  config.num_chains = 2;
  config.mh.samples = 5;
  config.mh.burn_in = 2;
  config.mh.thin = 1;
  config.checkpoint_dir = fresh_dir("lock_reject");
  mcmc::CompletenessCriterion criterion;
  criterion.max_rounds = 1;

  std::string error;
  mcmc::CheckpointDirLock held =
      mcmc::CheckpointDirLock::acquire(config.checkpoint_dir, &error);
  ASSERT_TRUE(held.held()) << error;

  const mcmc::CompletenessResult rejected =
      mcmc::run_until_complete(bfn, factory, p, config, criterion);
  EXPECT_TRUE(rejected.lock_rejected);
  EXPECT_TRUE(rejected.final_result.failed);
  EXPECT_EQ(rejected.rounds, 0u);
  EXPECT_NE(rejected.final_result.fail_reason.find("locked by pid"),
            std::string::npos);

  // Releasing the lock lets the campaign run (and take the lock itself).
  held.release();
  const mcmc::CompletenessResult ran =
      mcmc::run_until_complete(bfn, factory, p, config, criterion);
  EXPECT_FALSE(ran.lock_rejected);
  EXPECT_EQ(ran.rounds, 1u);
  // The campaign's own lock is released on return.
  EXPECT_FALSE(std::filesystem::exists(
      mcmc::checkpoint_lock_path(config.checkpoint_dir)));
  std::filesystem::remove_all(config.checkpoint_dir);
}

// ---------------------------------------------------------------------------
// Fleet runs. A trained golden checkpoint matching the worker's mlp subject
// recipe is shared by every test below.

class FleetRunTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng data_rng{11};
    data::Dataset all = data::make_two_moons(400, 0.08, data_rng);
    util::Rng init_rng{12};
    nn::Network net = nn::make_mlp({2, 16, 32, 2}, init_rng);
    train::TrainConfig config;
    config.epochs = 8;
    config.lr = 0.05;
    config.seed = 3;
    train::fit(net, all, all, config);
    ckpt_path_ = new std::string(::testing::TempDir() +
                                 "bdlfi_fleet_golden.ckpt");
    ASSERT_TRUE(nn::save_checkpoint(net, *ckpt_path_));
  }
  static void TearDownTestSuite() {
    std::filesystem::remove(*ckpt_path_);
    delete ckpt_path_;
    ckpt_path_ = nullptr;
  }
  void SetUp() override { util::set_interrupt_requested(false); }
  void TearDown() override { util::set_interrupt_requested(false); }

  /// A two-campaign fleet sized so each round takes a supervisor-visible
  /// amount of wall clock (the chaos kill must land mid-campaign).
  static FleetSpec two_campaign_fleet() {
    const std::string text = R"({
      "schema": "bdlfi_fleet_spec", "version": 1,
      "workers": 2, "worker_backoff_ms": 10, "worker_backoff_cap_ms": 20,
      "defaults": {
        "ckpt": ")" + *ckpt_path_ + R"(",
        "samples": 2000, "chains": 2, "samples_per_chain": 80,
        "burn_in": 20, "thin": 2, "mask_batch": 4, "seed": 21,
        "rhat": 0.2, "tol": 0.0, "max_rounds": 3
      },
      "campaigns": [{"name": "p-lo", "p": 1e-3}, {"name": "p-hi", "p": 2e-3}]
    })";
    std::string error;
    const auto fleet = parse_fleet_spec(text, &error);
    EXPECT_TRUE(fleet.has_value()) << error;
    return *fleet;
  }

  static std::string* ckpt_path_;
};

std::string* FleetRunTest::ckpt_path_ = nullptr;

TEST_F(FleetRunTest, WorkerWritesDeterministicResultDocument) {
  const std::string spec_text = R"({
    "schema": "bdlfi_fleet_spec", "version": 1,
    "campaigns": [{
      "name": "tiny", "ckpt": ")" + *ckpt_path_ + R"(",
      "samples": 200, "chains": 2, "samples_per_chain": 10,
      "burn_in": 5, "thin": 1, "max_rounds": 1, "rhat": 0.5, "tol": 0.0
    }]})";
  std::string error;
  const auto fleet = parse_fleet_spec(spec_text, &error);
  ASSERT_TRUE(fleet.has_value()) << error;
  const CampaignSpec& spec = fleet->campaigns[0];

  const std::string out_a = fresh_dir("worker_a");
  const std::string out_b = fresh_dir("worker_b");
  const WorkerPaths paths_a = worker_paths(out_a, spec.name, 1);
  const WorkerPaths paths_b = worker_paths(out_b, spec.name, 1);
  // One round against an unattainable criterion: budget exhausted, exit 3.
  EXPECT_EQ(run_worker(spec, paths_a, false), 3);
  EXPECT_EQ(run_worker(spec, paths_b, false), 3);

  const std::string doc_a = read_file(paths_a.result_path);
  ASSERT_FALSE(doc_a.empty());
  EXPECT_EQ(doc_a, read_file(paths_b.result_path));

  const auto doc = obs::json_parse(doc_a, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("schema")->as_string(), kFleetResultSchema);
  EXPECT_EQ(doc->find("name")->as_string(), "tiny");
  EXPECT_EQ(doc->find("campaign_id")->as_string(), spec.id);
  EXPECT_FALSE(doc->find("converged")->as_bool());
  expect_valid_jsonl(paths_a.metrics_path);
  std::filesystem::remove_all(out_a);
  std::filesystem::remove_all(out_b);
}

#if defined(__unix__) || defined(__APPLE__)

TEST_F(FleetRunTest, SigkillMidRoundResumesToByteIdenticalResults) {
  const FleetSpec fleet = two_campaign_fleet();
  ASSERT_EQ(fleet.campaigns.size(), 2u);

  // Reference: the uninterrupted fleet.
  const std::string out_clean = fresh_dir("clean");
  FleetOptions clean_options;
  clean_options.out_dir = out_clean;
  clean_options.quiet = true;
  const FleetResult clean = run_fleet(fleet, clean_options);
  ASSERT_EQ(clean.campaigns.size(), 2u);
  for (const CampaignOutcome& c : clean.campaigns) {
    EXPECT_EQ(c.status, "not_converged") << c.spec.name;
    EXPECT_EQ(c.attempts, 1u);
    EXPECT_EQ(c.rounds, 3u);
  }
  EXPECT_EQ(clean.exit_code(), 3);

  // Chaos: SIGKILL each campaign's worker once its stream shows round 1; the
  // supervisor must restart it from the round-1 checkpoint.
  const std::string out_chaos = fresh_dir("chaos");
  FleetOptions chaos_options;
  chaos_options.out_dir = out_chaos;
  chaos_options.quiet = true;
  chaos_options.chaos_kill_round = 1;
  chaos_options.poll_interval_ms = 2.0;
  std::vector<WorkerEvent> events;
  chaos_options.event_hook = [&events](const WorkerEvent& e) {
    events.push_back(e);
  };
  const FleetResult chaos = run_fleet(fleet, chaos_options);
  ASSERT_EQ(chaos.campaigns.size(), 2u);

  std::size_t restarts = 0;
  for (const WorkerEvent& e : events) {
    if (e.type == "worker_restart") {
      ++restarts;
      EXPECT_EQ(e.outcome, "chaos_kill");
      EXPECT_GT(e.backoff_ms, 0.0);
    }
  }
  EXPECT_EQ(restarts, 2u);
  for (const CampaignOutcome& c : chaos.campaigns) {
    EXPECT_EQ(c.status, "not_converged") << c.spec.name;
    EXPECT_EQ(c.attempts, 2u) << c.spec.name;
  }

  // The killed-and-resumed fleet is indistinguishable from the uninterrupted
  // one: per-campaign result documents are byte-identical.
  for (const CampaignSpec& spec : fleet.campaigns) {
    const std::string clean_doc =
        read_file(worker_paths(out_clean, spec.name, 1).result_path);
    const std::string chaos_doc =
        read_file(worker_paths(out_chaos, spec.name, 1).result_path);
    ASSERT_FALSE(clean_doc.empty()) << spec.name;
    EXPECT_EQ(clean_doc, chaos_doc) << spec.name;
  }

  // The fleet log is strict JSONL and records the restarts.
  expect_valid_jsonl(out_chaos + "/fleet.jsonl");
  EXPECT_NE(read_file(out_chaos + "/fleet.jsonl").find("worker_restart"),
            std::string::npos);
  EXPECT_NE(read_file(out_chaos + "/summary.csv").find("p-lo"),
            std::string::npos);

  // Resuming the finished fleet is a no-op that leaves results untouched.
  FleetOptions resume_options;
  resume_options.out_dir = out_chaos;
  resume_options.quiet = true;
  resume_options.resume = true;
  const std::string before =
      read_file(worker_paths(out_chaos, "p-lo", 1).result_path);
  const FleetResult resumed = run_fleet(fleet, resume_options);
  for (const CampaignOutcome& c : resumed.campaigns) {
    EXPECT_EQ(c.status, "not_converged");
    EXPECT_EQ(c.attempts, 1u);
  }
  EXPECT_EQ(before,
            read_file(worker_paths(out_chaos, "p-lo", 1).result_path));

  std::filesystem::remove_all(out_clean);
  std::filesystem::remove_all(out_chaos);
}

TEST_F(FleetRunTest, RetryExhaustionQuarantinesWithoutFailingTheRest) {
  const std::string text = R"({
    "schema": "bdlfi_fleet_spec", "version": 1,
    "workers": 2, "max_worker_retries": 1,
    "worker_backoff_ms": 1, "worker_backoff_cap_ms": 2,
    "defaults": {
      "samples": 200, "chains": 2, "samples_per_chain": 10,
      "burn_in": 5, "thin": 1, "max_rounds": 3, "rhat": 100.0, "tol": 100.0
    },
    "campaigns": [
      {"name": "good", "ckpt": ")" + *ckpt_path_ + R"(", "p": 1e-3},
      {"name": "bad", "ckpt": "/nonexistent/golden.ckpt", "p": 1e-3}
    ]})";
  std::string error;
  const auto fleet = parse_fleet_spec(text, &error);
  ASSERT_TRUE(fleet.has_value()) << error;

  const std::string out = fresh_dir("quarantine");
  FleetOptions options;
  options.out_dir = out;
  options.quiet = true;
  options.poll_interval_ms = 2.0;
  const FleetResult result = run_fleet(*fleet, options);

  ASSERT_EQ(result.campaigns.size(), 2u);
  const CampaignOutcome& good = result.campaigns[0];
  const CampaignOutcome& bad = result.campaigns[1];
  // A lenient criterion converges at round 2 (stability needs two rounds).
  EXPECT_EQ(good.status, "completed");
  EXPECT_EQ(good.attempts, 1u);
  EXPECT_EQ(bad.status, "quarantined");
  EXPECT_EQ(bad.attempts, 2u);  // initial launch + one retry
  EXPECT_EQ(bad.last_failure, "exit:2");
  EXPECT_EQ(result.quarantined, 1u);
  EXPECT_EQ(result.completed, 1u);
  // Degraded exit: the quarantine dominates, but the fleet finished.
  EXPECT_EQ(result.exit_code(), 4);
  // The good campaign's result document exists despite the sick sibling.
  EXPECT_FALSE(
      read_file(worker_paths(out, "good", 1).result_path).empty());
  std::filesystem::remove_all(out);
}

#endif  // unix

}  // namespace
}  // namespace bdlfi::fleet
