// Datasets: generators' label/shape invariants, splits, batching, normalizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/cifar_like.h"
#include "data/dataset.h"
#include "data/toy2d.h"

namespace bdlfi::data {
namespace {

TEST(TwoMoons, ShapeAndBalancedLabels) {
  util::Rng rng{1};
  Dataset ds = make_two_moons(400, 0.05, rng);
  EXPECT_EQ(ds.size(), 400u);
  EXPECT_EQ(ds.inputs.shape(), Shape({400, 2}));
  const auto ones = std::count(ds.labels.begin(), ds.labels.end(), 1);
  EXPECT_EQ(ones, 200);
  ds.check_valid(2);
}

TEST(TwoMoons, ClassesSpatiallySeparatedOnAverage) {
  util::Rng rng{2};
  Dataset ds = make_two_moons(2000, 0.02, rng);
  double y0 = 0.0, y1 = 0.0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    (ds.labels[i] == 0 ? y0 : y1) += ds.inputs[static_cast<std::int64_t>(i) * 2 + 1];
  }
  // Upper moon (label 0) has higher mean y than lower moon.
  EXPECT_GT(y0 / 1000.0, y1 / 1000.0);
}

TEST(Rings, RadiiSeparate) {
  util::Rng rng{3};
  Dataset ds = make_rings(1000, 0.03, rng);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const float x = ds.inputs[static_cast<std::int64_t>(i) * 2];
    const float y = ds.inputs[static_cast<std::int64_t>(i) * 2 + 1];
    const double r = std::sqrt(static_cast<double>(x) * x + static_cast<double>(y) * y);
    if (ds.labels[i] == 0) {
      EXPECT_LT(r, 0.7);
    } else {
      EXPECT_GT(r, 0.7);
    }
  }
}

TEST(Blobs, KClassesAllPresent) {
  util::Rng rng{4};
  Dataset ds = make_blobs(90, 5, 3.0, 0.2, rng);
  std::set<std::int64_t> classes(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(classes.size(), 5u);
  ds.check_valid(5);
}

TEST(CifarLike, ShapeRangeAndBalance) {
  util::Rng rng{5};
  CifarLikeConfig config;
  config.samples_per_class = 20;
  Dataset ds = make_cifar_like(config, rng);
  EXPECT_EQ(ds.size(), 200u);
  EXPECT_EQ(ds.inputs.shape(), Shape({200, 3, 32, 32}));
  for (std::int64_t i = 0; i < ds.inputs.numel(); ++i) {
    EXPECT_GE(ds.inputs[i], 0.0f);
    EXPECT_LE(ds.inputs[i], 1.0f);
  }
  for (int c = 0; c < 10; ++c) {
    EXPECT_EQ(std::count(ds.labels.begin(), ds.labels.end(), c), 20);
  }
}

TEST(CifarLike, ClassMeansDiffer) {
  // The classes must be statistically distinguishable for training to work:
  // per-class mean images should differ pairwise by a margin.
  util::Rng rng{6};
  CifarLikeConfig config;
  config.samples_per_class = 10;
  config.num_classes = 4;
  Dataset ds = make_cifar_like(config, rng);
  const std::int64_t d = ds.sample_numel();
  std::vector<std::vector<double>> means(4, std::vector<double>(static_cast<std::size_t>(d), 0.0));
  std::vector<int> counts(4, 0);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto c = static_cast<std::size_t>(ds.labels[i]);
    ++counts[c];
    for (std::int64_t j = 0; j < d; ++j) {
      means[c][static_cast<std::size_t>(j)] +=
          ds.inputs[static_cast<std::int64_t>(i) * d + j];
    }
  }
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      double dist = 0.0;
      for (std::int64_t j = 0; j < d; ++j) {
        const double diff = means[a][static_cast<std::size_t>(j)] / counts[a] -
                            means[b][static_cast<std::size_t>(j)] / counts[b];
        dist += diff * diff;
      }
      EXPECT_GT(std::sqrt(dist), 1.0) << "classes " << a << "," << b;
    }
  }
}

TEST(Dataset, GatherCopiesRows) {
  util::Rng rng{7};
  Dataset ds = make_blobs(10, 2, 3.0, 0.1, rng);
  Dataset picked = ds.gather({3, 7});
  EXPECT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked.labels[0], ds.labels[3]);
  EXPECT_EQ(picked.inputs[0], ds.inputs[3 * 2]);
  EXPECT_EQ(picked.inputs[1], ds.inputs[3 * 2 + 1]);
}

TEST(Dataset, SliceRange) {
  util::Rng rng{8};
  Dataset ds = make_blobs(10, 2, 3.0, 0.1, rng);
  Dataset s = ds.slice(2, 5);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.labels[0], ds.labels[2]);
}

TEST(Split, PartitionsWithoutOverlapOrLoss) {
  util::Rng rng{9};
  Dataset ds = make_blobs(100, 2, 3.0, 0.1, rng);
  // Tag each sample uniquely through its first coordinate.
  for (std::size_t i = 0; i < 100; ++i) {
    ds.inputs[static_cast<std::int64_t>(i) * 2] = static_cast<float>(i);
  }
  Split split = split_dataset(ds, 0.7, rng);
  EXPECT_EQ(split.train.size(), 70u);
  EXPECT_EQ(split.test.size(), 30u);
  std::set<float> seen;
  for (std::size_t i = 0; i < 70; ++i) {
    seen.insert(split.train.inputs[static_cast<std::int64_t>(i) * 2]);
  }
  for (std::size_t i = 0; i < 30; ++i) {
    seen.insert(split.test.inputs[static_cast<std::int64_t>(i) * 2]);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(BatchIterator, CoversEpochExactly) {
  util::Rng rng{10};
  Dataset ds = make_blobs(25, 2, 3.0, 0.1, rng);
  util::Rng brng{11};
  BatchIterator it(ds, 8, brng);
  EXPECT_EQ(it.batches_per_epoch(), 4u);
  Dataset batch;
  std::size_t total = 0, batches = 0;
  while (it.next(batch)) {
    total += batch.size();
    ++batches;
  }
  EXPECT_EQ(total, 25u);
  EXPECT_EQ(batches, 4u);
  // Next epoch restarts after start_epoch().
  EXPECT_FALSE(it.next(batch));
  it.start_epoch();
  EXPECT_TRUE(it.next(batch));
}

TEST(Normalizer, ZeroMeanUnitVariance) {
  util::Rng rng{12};
  Dataset ds = make_blobs(500, 3, 5.0, 1.0, rng);
  fit_normalizer(ds);
  const std::int64_t d = ds.sample_numel();
  for (std::int64_t j = 0; j < d; ++j) {
    double sum = 0.0, sq = 0.0;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      const double v = ds.inputs[static_cast<std::int64_t>(i) * d + j];
      sum += v;
      sq += v * v;
    }
    const double mean = sum / static_cast<double>(ds.size());
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / static_cast<double>(ds.size()) - mean * mean, 1.0, 1e-3);
  }
}

TEST(Normalizer, SameTransformAppliesToOtherSplit) {
  util::Rng rng{13};
  Dataset train = make_blobs(200, 2, 5.0, 1.0, rng);
  Dataset test = make_blobs(50, 2, 5.0, 1.0, rng);
  const auto [mean, stddev] = fit_normalizer(train);
  const float before = test.inputs[0];
  apply_normalizer(test, mean, stddev);
  EXPECT_NE(test.inputs[0], before);
  EXPECT_NEAR(test.inputs[0], (before - mean[0]) / stddev[0], 1e-6f);
}

TEST(Dataset, CheckValidCatchesBadLabel) {
  Dataset ds;
  ds.inputs = Tensor{Shape{1, 2}};
  ds.labels = {5};
  EXPECT_DEATH(ds.check_valid(3), "label");
}

}  // namespace
}  // namespace bdlfi::data
