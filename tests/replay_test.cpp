// Truncated forward replay: the golden activation cache must be an *exact*
// shortcut. For every target kind (weights, biases, inputs, activations,
// buffers) and both subject architectures (MLP, ResNet-18), the truncated
// evaluation path must produce bit-identical logits and identical outcomes to
// a cache-less full forward — including the over-budget fallback and
// partial-prefix cases.
#include <gtest/gtest.h>

#include <cstring>

#include "bayes/fault_network.h"
#include "data/cifar_like.h"
#include "data/toy2d.h"
#include "nn/builders.h"
#include "util/rng.h"

namespace bdlfi::bayes {
namespace {

using tensor::Tensor;

// Bitwise tensor equality — NaN-safe (NaN == NaN holds at the bit level,
// which is exactly the "detected" outcome the taxonomy relies on).
::testing::AssertionResult bits_equal(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape())) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (std::memcmp(a.data(), b.data(),
                  static_cast<std::size_t>(a.numel()) * sizeof(float)) != 0) {
    return ::testing::AssertionFailure() << "logit bits differ";
  }
  return ::testing::AssertionSuccess();
}

void expect_outcomes_equal(const MaskOutcome& a, const MaskOutcome& b) {
  EXPECT_DOUBLE_EQ(a.classification_error, b.classification_error);
  EXPECT_DOUBLE_EQ(a.deviation, b.deviation);
  EXPECT_DOUBLE_EQ(a.detected, b.detected);
  EXPECT_DOUBLE_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.flipped_bits, b.flipped_bits);
}

struct Subject {
  nn::Network net;
  Tensor inputs;
  std::vector<std::int64_t> labels;
};

Subject make_mlp_subject() {
  util::Rng data_rng{101};
  data::Dataset data = data::make_two_moons(48, 0.08, data_rng);
  util::Rng init{102};
  return {nn::make_mlp({2, 8, 8, 2}, init), data.inputs, data.labels};
}

Subject make_resnet_subject() {
  data::CifarLikeConfig config;
  config.samples_per_class = 2;
  config.num_classes = 4;
  config.image_size = 8;
  util::Rng data_rng{103};
  data::Dataset data = data::make_cifar_like(config, data_rng);
  nn::ResNetConfig net_config;
  net_config.width_multiplier = 0.0625;
  net_config.num_classes = 4;
  util::Rng init{104};
  return {nn::make_resnet18(net_config, init), data.inputs, data.labels};
}

std::vector<std::pair<std::string, TargetSpec>> target_specs() {
  TargetSpec biases;
  biases.roles = {nn::ParamRole::kBias};
  TargetSpec buffers = TargetSpec::all_parameters();
  buffers.include_buffers = true;
  TargetSpec everything = TargetSpec::all_parameters();
  everything.include_buffers = true;
  everything.include_input = true;
  everything.include_activations = true;
  return {{"weights", TargetSpec::weights_only()},
          {"biases", biases},
          {"inputs", TargetSpec::input_only()},
          {"activations", TargetSpec::activations_only()},
          {"params+buffers", buffers},
          {"everything", everything}};
}

void check_parity(const Subject& subject, double p, std::uint64_t seed,
                  EvalCacheConfig truncated_config = {}) {
  for (const auto& [label, spec] : target_specs()) {
    SCOPED_TRACE(label);
    EvalCacheConfig full_config;
    full_config.enable_truncated_replay = false;
    BayesianFaultNetwork truncated(subject.net, spec,
                                   fault::AvfProfile::uniform(),
                                   subject.inputs, subject.labels,
                                   truncated_config);
    BayesianFaultNetwork full(subject.net, spec, fault::AvfProfile::uniform(),
                              subject.inputs, subject.labels, full_config);
    ASSERT_EQ(truncated.space().total_bits(), full.space().total_bits());
    EXPECT_EQ(full.cached_layers(), 0u);

    util::Rng rng{seed};
    for (int trial = 0; trial < 5; ++trial) {
      const FaultMask mask = truncated.sample_prior_mask(p, rng);
      EXPECT_TRUE(bits_equal(truncated.logits_under_mask(mask),
                             full.logits_under_mask(mask)));
      expect_outcomes_equal(truncated.evaluate_mask(mask),
                            full.evaluate_mask(mask));
      EXPECT_EQ(truncated.deviation_under_mask(mask),
                full.deviation_under_mask(mask));
    }
    // Every cache-less evaluation ran the whole network.
    const EvalStats& fs = full.eval_stats();
    EXPECT_EQ(fs.truncated_evals, 0u);
    EXPECT_EQ(fs.layers_run, fs.layers_total);
  }
}

TEST(ReplayParityTest, MlpAllTargetKindsBitExact) {
  check_parity(make_mlp_subject(), 0.005, 7);
}

TEST(ReplayParityTest, ResnetAllTargetKindsBitExact) {
  check_parity(make_resnet_subject(), 2e-4, 8);
}

TEST(ReplayParityTest, OverBudgetFallbackIsExact) {
  // A budget too small for even the first activation disables the cache; the
  // full-forward fallback must behave identically.
  EvalCacheConfig tiny;
  tiny.memory_budget_bytes = 8;
  check_parity(make_mlp_subject(), 0.005, 9, tiny);
}

TEST(ReplayParityTest, PartialPrefixBudgetIsExact) {
  // Budget for roughly half the MLP's activations: replay starts from the
  // deepest cached layer below the first affected one.
  Subject subject = make_mlp_subject();
  EvalCacheConfig partial;
  partial.memory_budget_bytes =
      static_cast<std::size_t>(subject.inputs.shape()[0]) * 8 * sizeof(float) *
      2;
  check_parity(subject, 0.005, 10, partial);

  BayesianFaultNetwork bfn(subject.net, TargetSpec::all_parameters(),
                           fault::AvfProfile::uniform(), subject.inputs,
                           subject.labels, partial);
  EXPECT_GT(bfn.cached_layers(), 0u);
  EXPECT_LT(bfn.cached_layers(), subject.net.num_layers());
}

TEST(ReplayParityTest, EmptyMaskUsesCachedLogits) {
  Subject subject = make_mlp_subject();
  BayesianFaultNetwork bfn(subject.net, TargetSpec::all_parameters(),
                           fault::AvfProfile::uniform(), subject.inputs,
                           subject.labels);
  ASSERT_EQ(bfn.cached_layers(), subject.net.num_layers());
  const MaskOutcome outcome = bfn.evaluate_mask(FaultMask{});
  EXPECT_DOUBLE_EQ(outcome.classification_error, bfn.golden_error());
  EXPECT_DOUBLE_EQ(outcome.deviation, 0.0);
  const EvalStats& stats = bfn.eval_stats();
  EXPECT_EQ(stats.truncated_evals, 1u);
  EXPECT_EQ(stats.full_evals, 0u);
  EXPECT_EQ(stats.layers_run, 0u);  // nothing re-ran: cached logits stand
  EXPECT_EQ(stats.layers_total, subject.net.num_layers());
}

TEST(ReplayParityTest, LateLayerTargetSkipsPrefix) {
  Subject subject = make_mlp_subject();
  const std::size_t depth = subject.net.num_layers();
  const std::string last = subject.net.layer_name(depth - 1);
  BayesianFaultNetwork bfn(subject.net, TargetSpec::single_layer(last),
                           fault::AvfProfile::uniform(), subject.inputs,
                           subject.labels);
  util::Rng rng{11};
  const FaultMask mask = bfn.sample_prior_mask(0.01, rng);
  ASSERT_GT(mask.num_flips(), 0u);
  EXPECT_EQ(bfn.space().first_replay_layer(mask),
            static_cast<std::int64_t>(depth - 1));
  bfn.evaluate_mask(mask);
  const EvalStats& stats = bfn.eval_stats();
  EXPECT_EQ(stats.truncated_evals, 1u);
  EXPECT_EQ(stats.layers_run, 1u);  // only the final dense layer re-ran
  EXPECT_EQ(stats.layers_total, depth);
}

TEST(ReplayParityTest, FirstReplayLayerPerSiteKind) {
  Subject subject = make_mlp_subject();
  TargetSpec spec = TargetSpec::all_parameters();
  spec.include_input = true;
  spec.include_activations = true;
  BayesianFaultNetwork bfn(subject.net, spec, fault::AvfProfile::uniform(),
                           subject.inputs, subject.labels);
  const auto& space = bfn.space();
  const auto depth = static_cast<std::int64_t>(subject.net.num_layers());
  EXPECT_EQ(space.first_replay_layer(FaultMask{}), depth);
  for (const auto& entry : space.entries()) {
    FaultMask mask({entry.offset * 32});  // bit 0 of the entry's first element
    std::int64_t expected = 0;
    switch (entry.site) {
      case InjectionSpace::SiteKind::kParam:
        expected = entry.layer;
        break;
      case InjectionSpace::SiteKind::kInput:
        expected = 0;
        break;
      case InjectionSpace::SiteKind::kActivation:
        expected = entry.layer + 1;
        break;
    }
    EXPECT_EQ(space.first_replay_layer(mask), expected) << entry.name;
  }
}

TEST(ReplayParityTest, ReplicaSharesCacheAndStaysExact) {
  Subject subject = make_mlp_subject();
  BayesianFaultNetwork bfn(subject.net, TargetSpec::all_parameters(),
                           fault::AvfProfile::uniform(), subject.inputs,
                           subject.labels);
  auto replica = bfn.replicate();
  EXPECT_EQ(replica->cached_layers(), bfn.cached_layers());
  EXPECT_EQ(replica->golden_predictions(), bfn.golden_predictions());
  EXPECT_DOUBLE_EQ(replica->golden_error(), bfn.golden_error());
  // Replica stats start fresh; evaluations agree bit-for-bit.
  EXPECT_EQ(replica->eval_stats().full_evals +
                replica->eval_stats().truncated_evals, 0u);
  util::Rng rng{12};
  for (int trial = 0; trial < 3; ++trial) {
    const FaultMask mask = bfn.sample_prior_mask(0.01, rng);
    EXPECT_TRUE(bits_equal(replica->logits_under_mask(mask),
                           bfn.logits_under_mask(mask)));
  }
}

TEST(ReplayParityTest, ForwardFromMatchesFullForward) {
  Subject subject = make_resnet_subject();
  nn::Network net = subject.net.clone();
  std::vector<Tensor> acts(net.num_layers());
  const Tensor logits = net.forward(
      subject.inputs, false,
      [&](std::size_t i, Tensor& act) { acts[i] = act; });
  for (std::size_t k = 1; k <= net.num_layers(); ++k) {
    const Tensor resumed = net.forward_from(k, acts[k - 1]);
    EXPECT_TRUE(bits_equal(resumed, logits)) << "resume at layer " << k;
  }
}

}  // namespace
}  // namespace bdlfi::bayes
