// Posterior-guided hardening loop: profile summarization/serialization,
// posterior-weighted fine-tune injection (clean-weight restoration, interrupt
// behavior, RNG-stream isolation from campaigns), and budgeted selective
// protection (frontier monotonicity, guard/ABFT index remapping).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <set>
#include <vector>

#include "bayes/posterior_profile.h"
#include "bayes/targets.h"
#include "data/toy2d.h"
#include "harden/placement.h"
#include "harden/profile_export.h"
#include "harden/trainer.h"
#include "mcmc/checkpoint.h"
#include "mcmc/runner.h"
#include "nn/builders.h"
#include "nn/range_guard.h"
#include "train/trainer.h"
#include "util/interrupt.h"
#include "util/rng.h"

namespace bdlfi::harden {
namespace {

class HardenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng{1};
    data_ = new data::Dataset(data::make_two_moons(200, 0.08, rng));
    util::Rng init{2};
    net_ = new nn::Network(nn::make_mlp({2, 12, 2}, init));
    train::TrainConfig config;
    config.epochs = 25;
    config.lr = 0.05;
    config.seed = 3;
    train::fit(*net_, *data_, *data_, config);
  }
  static void TearDownTestSuite() {
    delete net_;
    delete data_;
  }
  void SetUp() override { util::set_interrupt_requested(false); }
  void TearDown() override { util::set_interrupt_requested(false); }

  /// A finalized profile whose mass is concentrated by hand: one flip in
  /// every layer, with layer 0 seeing the most damaging mask.
  static bayes::PosteriorProfile seeded_profile(nn::Network& net) {
    fault::InjectionSpace space(net, fault::TargetSpec::all_parameters());
    bayes::PosteriorProfile profile(space);
    for (const auto& entry : space.entries()) {
      fault::FaultMask mask;
      mask.insert(entry.offset * 32 + 30);  // exponent bit of first element
      profile.add_sample(mask, entry.layer == 0 ? 40.0 : 2.0);
    }
    profile.finalize();
    return profile;
  }

  static std::vector<float> snapshot_weights(nn::Network& net) {
    std::vector<float> out;
    for (const auto& p : net.params()) {
      for (std::int64_t i = 0; i < p.value->numel(); ++i) {
        out.push_back((*p.value)[i]);
      }
    }
    return out;
  }

  static nn::Network* net_;
  static data::Dataset* data_;
};

nn::Network* HardenTest::net_ = nullptr;
data::Dataset* HardenTest::data_ = nullptr;

// ---------------------------------------------------------------------------
// PosteriorProfile: accumulation, normalization, serialization.

TEST_F(HardenTest, ProfileAttributesFlipsToOwningLayer) {
  fault::InjectionSpace space(*net_, fault::TargetSpec::all_parameters());
  bayes::PosteriorProfile profile(space);
  // All flips land in the tensor owned by the first entry (layer 0).
  const auto& e0 = space.entries().front();
  fault::FaultMask mask;
  mask.insert(e0.offset * 32 + 0);
  mask.insert(e0.offset * 32 + 63);  // second element, bit 31
  profile.add_sample(mask, 10.0);
  profile.finalize();

  EXPECT_EQ(profile.samples(), 1u);
  EXPECT_EQ(profile.total_flips(), 2u);
  double total_mass = 0.0;
  for (const auto& layer : profile.layers()) {
    total_mass += layer.mass;
    if (layer.layer == e0.layer) {
      EXPECT_EQ(layer.flips, 2u);
      EXPECT_NEAR(layer.mass, 1.0, 1e-12);
    } else {
      EXPECT_EQ(layer.flips, 0u);
    }
  }
  EXPECT_NEAR(total_mass, 1.0, 1e-9);
  // Bit mass: one flip at bit 0, one at bit 31, equal deviation weight.
  EXPECT_NEAR(profile.bit_mass()[0], 0.5, 1e-12);
  EXPECT_NEAR(profile.bit_mass()[31], 0.5, 1e-12);
}

TEST_F(HardenTest, ProfileWeightsFlipsByDeviation) {
  fault::InjectionSpace space(*net_, fault::TargetSpec::all_parameters());
  // Two single-flip samples in different layers; the second is 9x more
  // damaging (weight 1 + deviation), so it should hold 10x the mass.
  const auto& entries = space.entries();
  ASSERT_GE(entries.size(), 2u);
  std::size_t a = 0, b = 0;
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].layer != entries[0].layer) {
      b = i;
      break;
    }
  }
  ASSERT_NE(a, b) << "need two distinct layers";
  bayes::PosteriorProfile profile(space);
  profile.add_sample(fault::FaultMask({entries[a].offset * 32}), 0.0);
  profile.add_sample(fault::FaultMask({entries[b].offset * 32}), 19.0);
  profile.finalize();
  EXPECT_NEAR(profile.layer_mass(entries[a].layer), 1.0 / 21.0, 1e-12);
  EXPECT_NEAR(profile.layer_mass(entries[b].layer), 20.0 / 21.0, 1e-12);
}

TEST_F(HardenTest, EmptyProfileFallsBackToUniform) {
  fault::InjectionSpace space(*net_, fault::TargetSpec::all_parameters());
  bayes::PosteriorProfile profile(space);
  profile.finalize();
  std::size_t populated = 0;
  for (const auto& layer : profile.layers()) {
    if (layer.elements > 0) ++populated;
  }
  ASSERT_GT(populated, 0u);
  for (const auto& layer : profile.layers()) {
    if (layer.elements > 0) {
      EXPECT_NEAR(layer.mass, 1.0 / static_cast<double>(populated), 1e-12);
    } else {
      EXPECT_EQ(layer.mass, 0.0);
    }
  }
  for (double m : profile.bit_mass()) EXPECT_NEAR(m, 1.0 / 32.0, 1e-12);
}

TEST_F(HardenTest, ProfileJsonRoundTrip) {
  const auto profile = seeded_profile(*net_);
  std::string error;
  const auto loaded =
      bayes::PosteriorProfile::from_json(profile.to_json(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->finalized());
  EXPECT_EQ(loaded->samples(), profile.samples());
  EXPECT_EQ(loaded->total_flips(), profile.total_flips());
  ASSERT_EQ(loaded->layers().size(), profile.layers().size());
  for (std::size_t i = 0; i < profile.layers().size(); ++i) {
    EXPECT_EQ(loaded->layers()[i].name, profile.layers()[i].name);
    EXPECT_EQ(loaded->layers()[i].elements, profile.layers()[i].elements);
    EXPECT_NEAR(loaded->layers()[i].mass, profile.layers()[i].mass, 1e-12);
  }
  for (int b = 0; b < 32; ++b) {
    EXPECT_NEAR(loaded->bit_mass()[b], profile.bit_mass()[b], 1e-12);
  }
}

TEST_F(HardenTest, ProfileSaveLoadFile) {
  const std::string path = ::testing::TempDir() + "bdlfi_harden_profile.json";
  const auto profile = seeded_profile(*net_);
  ASSERT_TRUE(profile.save(path));
  std::string error;
  const auto loaded = bayes::PosteriorProfile::load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->samples(), profile.samples());
  std::filesystem::remove(path);
}

TEST_F(HardenTest, SamplerRespectsFlipBoundsAndProtection) {
  const auto profile = seeded_profile(*net_);
  fault::InjectionSpace space(*net_, fault::TargetSpec::all_parameters());
  // Protect the first 10 elements: the sampler must never flip a bit there.
  std::vector<std::int64_t> protect;
  for (std::int64_t e = 0; e < 10; ++e) protect.push_back(e);
  space.protect_elements(protect);

  const auto sampler = profile.make_sampler(/*min_flips=*/1, /*max_flips=*/3,
                                            /*smoothing=*/0.1);
  util::Rng rng{77};
  for (int i = 0; i < 300; ++i) {
    const auto mask = sampler->sample(space, rng);
    EXPECT_GE(mask.num_flips(), 1u);
    EXPECT_LE(mask.num_flips(), 3u);
    for (std::int64_t flat : mask.bits()) {
      EXPECT_FALSE(space.is_protected(flat / 32));
      EXPECT_LT(flat, space.total_bits());
    }
  }
}

// ---------------------------------------------------------------------------
// FaultAwareTrainer: clean-weight restoration, skip accounting, interrupt.

TEST_F(HardenTest, TrainerRestoresCleanWeightsGolden) {
  // With lr = 0 the optimizer is a no-op, so any weight drift after a run
  // could only come from a leaked (un-reverted) injection mask. Bit-exact
  // equality is therefore the golden-state-restoration property.
  nn::Network net = net_->clone();
  const auto before = snapshot_weights(net);

  FaultAwareConfig config;
  config.base.epochs = 2;
  config.base.lr = 0.0;
  config.base.momentum = 0.0;
  config.base.seed = 5;
  config.inject_prob = 1.0;  // every batch runs under a mask
  const auto profile = seeded_profile(net);
  FaultAwareTrainer trainer(net, profile, config);
  const auto result = trainer.run(*data_, *data_);

  EXPECT_GT(result.batches_injected, 0u);
  EXPECT_GE(result.flips_injected, result.batches_injected);
  const auto after = snapshot_weights(net);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(std::memcmp(&before[i], &after[i], sizeof(float)), 0)
        << "weight " << i << " drifted: " << before[i] << " -> " << after[i];
  }
}

TEST_F(HardenTest, TrainerImprovesOrKeepsAccuracyUnderInjection) {
  nn::Network net = net_->clone();
  FaultAwareConfig config;
  config.base.epochs = 5;
  config.base.lr = 0.02;
  config.base.seed = 6;
  config.inject_prob = 0.5;
  const auto profile = seeded_profile(net);
  FaultAwareTrainer trainer(net, profile, config);
  const auto result = trainer.run(*data_, *data_);
  EXPECT_FALSE(result.train.interrupted);
  // Fine-tuning must not destroy the network: weights finite, accuracy sane.
  for (float w : snapshot_weights(net)) EXPECT_TRUE(std::isfinite(w));
  EXPECT_GE(result.train.final_test_accuracy, 0.9);
}

TEST_F(HardenTest, TrainerHonorsInterruptBeforeFirstBatch) {
  nn::Network net = net_->clone();
  const auto before = snapshot_weights(net);
  FaultAwareConfig config;
  config.base.epochs = 50;
  config.base.lr = 0.05;
  config.base.seed = 7;
  const auto profile = seeded_profile(net);
  FaultAwareTrainer trainer(net, profile, config);
  util::set_interrupt_requested(true);
  const auto result = trainer.run(*data_, *data_);
  EXPECT_TRUE(result.train.interrupted);
  // Stopped at the first batch boundary: no update ran, no mask leaked.
  EXPECT_EQ(result.batches_injected, 0u);
  EXPECT_EQ(snapshot_weights(net), before);
}

TEST_F(HardenTest, TrainerDeterministicForSeed) {
  const auto profile = seeded_profile(*net_);
  FaultAwareConfig config;
  config.base.epochs = 3;
  config.base.lr = 0.02;
  config.base.seed = 8;
  config.inject_seed = 0xABCDEF;
  nn::Network a = net_->clone();
  nn::Network b = net_->clone();
  FaultAwareTrainer ta(a, profile, config);
  FaultAwareTrainer tb(b, profile, config);
  const auto ra = ta.run(*data_, *data_);
  const auto rb = tb.run(*data_, *data_);
  EXPECT_EQ(ra.batches_injected, rb.batches_injected);
  EXPECT_EQ(ra.flips_injected, rb.flips_injected);
  EXPECT_EQ(snapshot_weights(a), snapshot_weights(b));
}

// ---------------------------------------------------------------------------
// RNG-stream isolation: a checkpointed campaign resumed after a harden run
// is bit-exact with one resumed without it. The fine-tune injection stream
// (FaultAwareConfig::inject_seed) shares no state with campaign RNGs.

TEST_F(HardenTest, CampaignResumeAfterHardenIsBitExact) {
  bayes::BayesianFaultNetwork bfn(
      *net_, bayes::TargetSpec::all_parameters(), bayes::AvfProfile::uniform(),
      data_->inputs, data_->labels);
  const double p = 1e-3;
  mcmc::TargetFactory factory = [p](bayes::BayesianFaultNetwork& net) {
    return std::make_unique<bayes::PriorTarget>(net, p);
  };
  mcmc::RunnerConfig config;
  config.num_chains = 2;
  config.mh.samples = 20;
  config.mh.burn_in = 8;
  config.mh.thin = 2;
  config.mh.record_masks = true;
  config.seed = 21;
  mcmc::CompletenessCriterion criterion;
  criterion.rhat_threshold = 0.0;  // unattainable: run every round
  criterion.mean_rel_tol = 0.0;
  criterion.max_rounds = 3;

  // Reference: the uninterrupted campaign.
  const auto reference =
      mcmc::run_until_complete(bfn, factory, p, config, criterion);
  ASSERT_EQ(reference.rounds, 3u);

  // Checkpointed campaign "killed" after round 2.
  const std::string dir = ::testing::TempDir() + "bdlfi_harden_resume";
  std::filesystem::remove_all(dir);
  mcmc::RunnerConfig interrupted = config;
  interrupted.checkpoint_dir = dir;
  interrupted.round_hook = [](const obs::RoundEvent& e) {
    if (e.round == 2) util::set_interrupt_requested(true);
  };
  const auto partial =
      mcmc::run_until_complete(bfn, factory, p, interrupted, criterion);
  ASSERT_TRUE(partial.interrupted);
  util::set_interrupt_requested(false);

  // A full harden run between kill and resume: profile from the partial
  // campaign, fault-aware fine-tune of a clone. Must consume no randomness
  // any campaign stream depends on.
  auto profile = summarize_campaign(partial.final_result, bfn.space());
  nn::Network tuned = net_->clone();
  FaultAwareConfig hcfg;
  hcfg.base.epochs = 2;
  hcfg.base.lr = 0.02;
  hcfg.base.seed = 31;
  FaultAwareTrainer trainer(tuned, profile, hcfg);
  const auto tune = trainer.run(*data_, *data_);
  EXPECT_FALSE(tune.train.interrupted);

  // Resume: bit-exact with the uninterrupted reference.
  mcmc::RunnerConfig resumed_config = config;
  resumed_config.checkpoint_dir = dir;
  resumed_config.resume = true;
  const auto resumed =
      mcmc::run_until_complete(bfn, factory, p, resumed_config, criterion);
  EXPECT_FALSE(resumed.resume_rejected);
  EXPECT_EQ(resumed.resumed_from_round, 2u);
  ASSERT_EQ(resumed.rounds, 3u);

  const auto& a = resumed.final_result;
  const auto& b = reference.final_result;
  ASSERT_EQ(a.chains.size(), b.chains.size());
  for (std::size_t c = 0; c < a.chains.size(); ++c) {
    ASSERT_EQ(a.chains[c].error_samples.size(),
              b.chains[c].error_samples.size());
    for (std::size_t i = 0; i < a.chains[c].error_samples.size(); ++i) {
      EXPECT_EQ(std::memcmp(&a.chains[c].error_samples[i],
                            &b.chains[c].error_samples[i], sizeof(double)),
                0);
    }
    // Retained masks are not part of the checkpoint (they exist for profile
    // export, not for the estimate): a resumed run re-accumulates from the
    // resume point, so its masks match the reference's trailing round(s).
    ASSERT_LE(a.chains[c].mask_samples.size(), b.chains[c].mask_samples.size());
    const std::size_t tail =
        b.chains[c].mask_samples.size() - a.chains[c].mask_samples.size();
    for (std::size_t i = 0; i < a.chains[c].mask_samples.size(); ++i) {
      EXPECT_EQ(a.chains[c].mask_samples[i],
                b.chains[c].mask_samples[tail + i]);
    }
  }
  EXPECT_EQ(std::memcmp(&a.mean_error, &b.mean_error, sizeof(double)), 0);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Budgeted selective protection.

TEST_F(HardenTest, PlacementRanksByMassPerOverhead) {
  const auto profile = seeded_profile(*net_);
  const auto candidates = placement_candidates(profile, *net_);
  ASSERT_FALSE(candidates.empty());
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].benefit / candidates[i - 1].overhead,
              candidates[i].benefit / candidates[i].overhead - 1e-12);
  }
  // Layer 0 carries the dominant mass, so its (cheap) guard ranks first.
  EXPECT_EQ(candidates.front().layer, 0u);
  EXPECT_EQ(candidates.front().kind, Protection::kRangeGuard);
}

TEST_F(HardenTest, PlacementRespectsBudget) {
  const auto profile = seeded_profile(*net_);
  for (double budget : {0.0, 0.02, 0.05, 0.1, 0.5}) {
    const auto plan = place_protection(profile, *net_, budget);
    EXPECT_LE(plan.overhead, budget + 1e-9);
    EXPECT_GE(plan.coverage, 0.0);
    EXPECT_LE(plan.coverage, 1.0 + 1e-9);
  }
  const auto empty = place_protection(profile, *net_, 0.0);
  EXPECT_TRUE(empty.selected.empty());
}

TEST_F(HardenTest, FrontierIsMonotoneAndNested) {
  const auto profile = seeded_profile(*net_);
  const std::vector<double> budgets = {0.0, 0.02, 0.04, 0.1, 0.3, 1.0};
  const auto frontier = coverage_frontier(profile, *net_, budgets);
  ASSERT_EQ(frontier.size(), budgets.size());
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GE(frontier[i].coverage, frontier[i - 1].coverage - 1e-12);
    // Prefix construction: a larger budget's selection contains the smaller's.
    ASSERT_GE(frontier[i].selected.size(), frontier[i - 1].selected.size());
    for (std::size_t j = 0; j < frontier[i - 1].selected.size(); ++j) {
      EXPECT_EQ(frontier[i].selected[j].layer, frontier[i - 1].selected[j].layer);
      EXPECT_EQ(frontier[i].selected[j].kind, frontier[i - 1].selected[j].kind);
    }
  }
  // A big enough budget covers all posterior mass.
  EXPECT_NEAR(frontier.back().coverage, 1.0, 1e-9);
}

TEST_F(HardenTest, ApplyPlanInsertsGuardsAndRemapsAbft) {
  const auto profile = seeded_profile(*net_);
  const auto plan = place_protection(profile, *net_, /*budget=*/1.0);
  ASSERT_FALSE(plan.guard_layers.empty());
  ASSERT_FALSE(plan.abft_layers.empty());

  tensor::abft::Config abft;
  abft.mode = tensor::abft::Mode::kDetect;
  const nn::Network hardened =
      apply_plan(*net_, plan, data_->inputs, abft);

  EXPECT_EQ(hardened.num_layers(),
            net_->num_layers() + plan.guard_layers.size());
  // Each selected guard sits immediately after its (shifted) layer.
  std::size_t guards_seen = 0;
  for (std::size_t g : plan.guard_layers) {
    const std::size_t shifted = g + guards_seen;
    ASSERT_LT(shifted + 1, hardened.num_layers());
    EXPECT_EQ(hardened.layer_kind(shifted + 1), "guard")
        << "no guard after original layer " << g;
    ++guards_seen;
  }
  // ABFT restriction was remapped past the inserted guards: every checked
  // layer is GEMM-bearing, and exactly the planned ones are checked.
  std::size_t checked = 0;
  for (std::size_t i = 0; i < hardened.num_layers(); ++i) {
    if (hardened.abft_layer_checked(i)) {
      ++checked;
      EXPECT_NE(hardened.layer_kind(i), "guard");
    }
  }
  EXPECT_EQ(checked, plan.abft_layers.size());
  // Hardened network still classifies: guards calibrated on clean data are
  // transparent to the clean forward.
  nn::Network mutable_hardened = hardened.clone();
  const double acc =
      train::evaluate_accuracy(mutable_hardened, *data_);
  EXPECT_GE(acc, 0.9);
}

TEST_F(HardenTest, ApplyPlanWithoutSelectionsIsPlainClone) {
  const auto profile = seeded_profile(*net_);
  const auto plan = place_protection(profile, *net_, 0.0);
  tensor::abft::Config abft;
  abft.mode = tensor::abft::Mode::kDetect;
  const nn::Network hardened = apply_plan(*net_, plan, data_->inputs, abft);
  EXPECT_EQ(hardened.num_layers(), net_->num_layers());
  // No ABFT layers selected -> ABFT left off entirely.
  EXPECT_EQ(hardened.abft().mode, tensor::abft::Mode::kOff);
}

}  // namespace
}  // namespace bdlfi::harden
