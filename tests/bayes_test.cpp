// BayesianFaultNetwork: golden-state immutability, mask evaluation semantics,
// targets' density algebra.
#include "bayes/fault_network.h"

#include <gtest/gtest.h>

#include <cmath>

#include "bayes/targets.h"
#include "data/toy2d.h"
#include "nn/builders.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace bdlfi::bayes {
namespace {

using tensor::Shape;
using tensor::Tensor;

// A small trained MLP shared by the suite (training once keeps tests fast).
class BayesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng{1};
    data_ = new data::Dataset(data::make_two_moons(400, 0.08, rng));
    util::Rng init{2};
    net_ = new nn::Network(nn::make_mlp({2, 16, 2}, init));
    train::TrainConfig config;
    config.epochs = 30;
    config.lr = 0.05;
    config.seed = 3;
    train::fit(*net_, *data_, *data_, config);
  }
  static void TearDownTestSuite() {
    delete net_;
    delete data_;
    net_ = nullptr;
    data_ = nullptr;
  }

  static BayesianFaultNetwork make_bfn(
      TargetSpec spec = TargetSpec::all_parameters()) {
    return BayesianFaultNetwork(*net_, spec, fault::AvfProfile::uniform(),
                                data_->inputs, data_->labels);
  }

  static nn::Network* net_;
  static data::Dataset* data_;
};

nn::Network* BayesTest::net_ = nullptr;
data::Dataset* BayesTest::data_ = nullptr;

TEST_F(BayesTest, GoldenErrorIsLowAfterTraining) {
  auto bfn = make_bfn();
  EXPECT_LT(bfn.golden_error(), 10.0);
  EXPECT_EQ(bfn.golden_predictions().size(), data_->size());
}

TEST_F(BayesTest, EmptyMaskIsExactlyGolden) {
  auto bfn = make_bfn();
  const MaskOutcome outcome = bfn.evaluate_mask(FaultMask{});
  EXPECT_DOUBLE_EQ(outcome.classification_error, bfn.golden_error());
  EXPECT_DOUBLE_EQ(outcome.deviation, 0.0);
  EXPECT_EQ(outcome.flipped_bits, 0u);
}

TEST_F(BayesTest, EvaluateMaskRestoresWeightsExactly) {
  auto bfn = make_bfn();
  util::Rng rng{4};
  const FaultMask mask = bfn.sample_prior_mask(0.01, rng);
  const MaskOutcome first = bfn.evaluate_mask(mask);
  // Re-evaluating the same mask must give the identical outcome — i.e. the
  // weights were restored bit-exactly in between.
  const MaskOutcome second = bfn.evaluate_mask(mask);
  EXPECT_DOUBLE_EQ(first.classification_error, second.classification_error);
  EXPECT_DOUBLE_EQ(first.deviation, second.deviation);
  // And an empty mask still reproduces the golden error.
  EXPECT_DOUBLE_EQ(bfn.evaluate_mask(FaultMask{}).classification_error,
                   bfn.golden_error());
}

TEST_F(BayesTest, GoldenNetworkIsNeverMutated) {
  Tensor probe = data_->inputs;
  const auto before = net_->predict(probe);
  auto bfn = make_bfn();
  util::Rng rng{5};
  for (int i = 0; i < 5; ++i) {
    bfn.evaluate_mask(bfn.sample_prior_mask(0.05, rng));
  }
  EXPECT_EQ(net_->predict(probe), before);
}

TEST_F(BayesTest, HighPCausesLargeError) {
  auto bfn = make_bfn();
  util::Rng rng{6};
  double total = 0.0;
  for (int i = 0; i < 10; ++i) {
    total += bfn.evaluate_mask(bfn.sample_prior_mask(0.05, rng))
                 .classification_error;
  }
  // At p=0.05 virtually every weight is corrupted; error far above golden.
  EXPECT_GT(total / 10.0, bfn.golden_error() + 10.0);
}

TEST_F(BayesTest, DeviationIndicatorsMatchOutcome) {
  auto bfn = make_bfn();
  util::Rng rng{7};
  const FaultMask mask = bfn.sample_prior_mask(0.02, rng);
  const auto indicators = bfn.deviation_under_mask(mask);
  const MaskOutcome outcome = bfn.evaluate_mask(mask);
  double frac = 0.0;
  for (auto v : indicators) frac += v;
  frac = 100.0 * frac / static_cast<double>(indicators.size());
  EXPECT_NEAR(frac, outcome.deviation, 1e-9);
}

TEST_F(BayesTest, ReplicateIsIndependentAndEquivalent) {
  auto bfn = make_bfn();
  auto replica = bfn.replicate();
  EXPECT_DOUBLE_EQ(replica->golden_error(), bfn.golden_error());
  util::Rng rng{8};
  const FaultMask mask = bfn.sample_prior_mask(0.01, rng);
  EXPECT_DOUBLE_EQ(replica->evaluate_mask(mask).classification_error,
                   bfn.evaluate_mask(mask).classification_error);
}

TEST_F(BayesTest, TransitionMatchesDirectApply) {
  auto bfn = make_bfn();
  util::Rng rng{9};
  const FaultMask a = bfn.sample_prior_mask(0.01, rng);
  const FaultMask b = bfn.sample_prior_mask(0.01, rng);
  // Route 1: direct evaluation of b.
  const double direct = bfn.evaluate_mask(b).classification_error;
  // Route 2: walk a → b via transition deltas.
  bfn.space().apply(a);
  bfn.transition(a, b);
  auto replica_preds = bfn.predict_current(data_->inputs);
  bfn.space().apply(b);  // revert to golden
  std::size_t miss = 0;
  for (std::size_t i = 0; i < data_->labels.size(); ++i) {
    if (replica_preds[i] != data_->labels[i]) ++miss;
  }
  const double walked =
      100.0 * static_cast<double>(miss) / static_cast<double>(data_->size());
  EXPECT_DOUBLE_EQ(direct, walked);
}

TEST_F(BayesTest, PriorTargetMatchesSpaceLogPrior) {
  auto bfn = make_bfn();
  PriorTarget target(bfn, 1e-3);
  util::Rng rng{10};
  const FaultMask mask = bfn.sample_prior_mask(1e-3, rng);
  EXPECT_DOUBLE_EQ(target.log_density(mask), bfn.log_prior(mask, 1e-3));
}

TEST_F(BayesTest, PriorTargetToggleDeltaConsistent) {
  auto bfn = make_bfn();
  PriorTarget target(bfn, 1e-3);
  FaultMask mask({100});
  const auto delta_in = target.analytic_toggle_delta(mask, 200);
  ASSERT_TRUE(delta_in.has_value());
  FaultMask toggled = mask;
  toggled.toggle(200);
  EXPECT_NEAR(*delta_in,
              target.log_density(toggled) - target.log_density(mask), 1e-9);
  // Toggling an existing bit out has the opposite sign.
  const auto delta_out = target.analytic_toggle_delta(mask, 100);
  ASSERT_TRUE(delta_out.has_value());
  EXPECT_NEAR(*delta_out, -*delta_in, 1e-9);
}

TEST_F(BayesTest, DeviationTemperedTargetTiltsTowardErrors) {
  auto bfn = make_bfn();
  DeviationTemperedTarget target(bfn, 1e-3, /*lambda=*/50.0);
  // An empty mask has zero deviation; a catastrophic mask (sign bit of many
  // weights) deviates a lot. With large lambda the tempered density can rank
  // a deviating mask above what the bare prior would.
  const FaultMask empty;
  util::Rng rng{11};
  const FaultMask big = bfn.sample_prior_mask(0.02, rng);
  const double d_empty = target.log_density(empty);
  const double d_big = target.log_density(big);
  const double prior_gap = bfn.log_prior(empty, 1e-3) - bfn.log_prior(big, 1e-3);
  const double tempered_gap = d_empty - d_big;
  // The likelihood term can only shrink the gap (big deviates more).
  EXPECT_LT(tempered_gap, prior_gap + 1e-9);
  EXPECT_TRUE(target.requires_network_eval());
}

}  // namespace
}  // namespace bdlfi::bayes
