// Fault-model zoo: burst, stuck-at, word faults — semantic invariants of
// each model's XOR-mask encoding, plus selective protection of the space.
#include "fault/models.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "nn/builders.h"
#include "util/rng.h"

namespace bdlfi::fault {
namespace {

class ModelsTest : public ::testing::Test {
 protected:
  ModelsTest() : rng_(1), net_(nn::make_mlp({4, 8, 3}, rng_)), space_(net_) {}
  util::Rng rng_;
  nn::Network net_;
  InjectionSpace space_;
};

TEST_F(ModelsTest, BernoulliSamplerMatchesSpaceSampling) {
  BernoulliSampler sampler(AvfProfile::uniform(), 0.01);
  util::Rng a{2}, b{2};
  const FaultMask via_sampler = sampler.sample(space_, a);
  const FaultMask via_space = space_.sample_mask(AvfProfile::uniform(), 0.01, b);
  EXPECT_EQ(via_sampler, via_space);
  EXPECT_EQ(sampler.name(), "bernoulli");
}

TEST_F(ModelsTest, BurstFlipsAdjacentRuns) {
  BurstSampler sampler(1e-4, 8);
  util::Rng rng{3};
  // Collect enough events to see a run.
  for (int trial = 0; trial < 200; ++trial) {
    const FaultMask mask = sampler.sample(space_, rng);
    if (mask.num_flips() < 8) continue;
    // Find a run of 8 consecutive flat bits.
    const auto& bits = mask.bits();
    for (std::size_t i = 0; i + 7 < bits.size(); ++i) {
      if (bits[i + 7] == bits[i] + 7) {
        SUCCEED();
        return;
      }
    }
  }
  FAIL() << "no 8-bit burst found across 200 samples";
}

TEST_F(ModelsTest, BurstFlipCountIsMultipleOfLengthAwayFromEdges) {
  BurstSampler sampler(1e-5, 4);
  util::Rng rng{4};
  for (int trial = 0; trial < 100; ++trial) {
    const FaultMask mask = sampler.sample(space_, rng);
    if (mask.empty()) continue;
    // With non-overlapping interior bursts the count is a multiple of 4;
    // overlaps/edge-clipping can change this, but at rate 1e-5 on a small
    // space overlaps are essentially impossible.
    EXPECT_EQ(mask.num_flips() % 4, 0u);
  }
}

TEST_F(ModelsTest, StuckAtZeroOnlyFlipsSetBits) {
  // Make all weights negative => sign bit 1, plenty of set bits.
  for (const auto& e : space_.entries()) {
    for (std::int64_t i = 0; i < e.value->numel(); ++i) {
      (*e.value)[i] = -1.5f;
    }
  }
  StuckAtSampler sampler(0.05, /*stuck_to_one=*/false);
  util::Rng rng{5};
  const FaultMask mask = sampler.sample(space_, rng);
  ASSERT_GT(mask.num_flips(), 0u);
  for (std::int64_t flat : mask.bits()) {
    const FaultSite site = FaultSite::from_flat(flat);
    const std::uint32_t word =
        float_to_bits(*space_.element_ptr(site.element));
    EXPECT_TRUE((word >> site.bit) & 1u)
        << "stuck-at-0 flipped an already-clear bit";
  }
  // Applying the mask forces those bits to 0: value moves toward the stuck
  // pattern.
  space_.apply(mask);
  for (std::int64_t flat : mask.bits()) {
    const FaultSite site = FaultSite::from_flat(flat);
    const std::uint32_t word =
        float_to_bits(*space_.element_ptr(site.element));
    EXPECT_FALSE((word >> site.bit) & 1u);
  }
}

TEST_F(ModelsTest, StuckAtOneOnlyFlipsClearBits) {
  for (const auto& e : space_.entries()) {
    for (std::int64_t i = 0; i < e.value->numel(); ++i) {
      (*e.value)[i] = 1.5f;  // sign bit clear, many mantissa bits clear
    }
  }
  StuckAtSampler sampler(0.05, /*stuck_to_one=*/true);
  util::Rng rng{6};
  const FaultMask mask = sampler.sample(space_, rng);
  ASSERT_GT(mask.num_flips(), 0u);
  for (std::int64_t flat : mask.bits()) {
    const FaultSite site = FaultSite::from_flat(flat);
    const std::uint32_t word =
        float_to_bits(*space_.element_ptr(site.element));
    EXPECT_FALSE((word >> site.bit) & 1u);
  }
}

TEST_F(ModelsTest, StuckAtMatchingValueIsNoop) {
  // All-zero weights: stuck-at-0 can never manifest.
  for (const auto& e : space_.entries()) e.value->fill(0.0f);
  StuckAtSampler sampler(0.1, false);
  util::Rng rng{7};
  EXPECT_TRUE(sampler.sample(space_, rng).empty());
}

TEST_F(ModelsTest, ZeroWordMaskZeroesTheWord) {
  util::Rng init{8};
  for (const auto& e : space_.entries()) {
    *e.value = tensor::Tensor::randn(e.value->shape(), init, 1.0f, 0.5f);
  }
  ZeroWordSampler sampler(0.05);
  util::Rng rng{9};
  const FaultMask mask = sampler.sample(space_, rng);
  ASSERT_GT(mask.num_flips(), 0u);
  // Applying the mask must zero every hit word.
  std::set<std::int64_t> hit_words;
  for (std::int64_t flat : mask.bits()) hit_words.insert(flat / 32);
  space_.apply(mask);
  for (std::int64_t w : hit_words) {
    EXPECT_EQ(*space_.element_ptr(w), 0.0f);
  }
}

TEST_F(ModelsTest, RandomWordReplacesWithUniformBits) {
  RandomWordSampler sampler(0.1);
  util::Rng rng{10};
  // The XOR delta applied to golden yields a uniformly random word; just
  // verify determinism and that hit words changed.
  util::Rng r1{11}, r2{11};
  const FaultMask a = sampler.sample(space_, r1);
  const FaultMask b = sampler.sample(space_, r2);
  EXPECT_EQ(a, b);
}

TEST_F(ModelsTest, CloneProducesEquivalentSampler) {
  BurstSampler sampler(1e-3, 4);
  auto copy = sampler.clone();
  util::Rng r1{12}, r2{12};
  EXPECT_EQ(sampler.sample(space_, r1), copy->sample(space_, r2));
}

// --- Selective protection -----------------------------------------------------

TEST_F(ModelsTest, ProtectedElementsNeverSampled) {
  std::vector<std::int64_t> all;
  for (std::int64_t e = 0; e < space_.total_elements() / 2; ++e) {
    all.push_back(e);
  }
  space_.protect_elements(all);
  EXPECT_EQ(space_.num_protected(),
            static_cast<std::size_t>(space_.total_elements() / 2));
  util::Rng rng{13};
  for (int trial = 0; trial < 50; ++trial) {
    const FaultMask mask =
        space_.sample_mask(AvfProfile::uniform(), 0.05, rng);
    for (std::int64_t flat : mask.bits()) {
      EXPECT_GE(flat / 32, space_.total_elements() / 2);
    }
  }
}

TEST_F(ModelsTest, ProtectedBitHasMinusInfToggleDelta) {
  space_.protect_elements({3});
  EXPECT_EQ(space_.log_prior_toggle_delta(3 * 32 + 5, AvfProfile::uniform(),
                                          0.01),
            -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isfinite(space_.log_prior_toggle_delta(
      4 * 32 + 5, AvfProfile::uniform(), 0.01)));
}

TEST_F(ModelsTest, ProtectMaskedPriorIsMinusInf) {
  space_.protect_elements({0});
  FaultMask mask({5});  // bit 5 of element 0
  EXPECT_EQ(space_.log_prior(mask, AvfProfile::uniform(), 0.01),
            -std::numeric_limits<double>::infinity());
}

TEST_F(ModelsTest, ProtectOutOfRangeAborts) {
  EXPECT_DEATH(space_.protect_elements({space_.total_elements()}),
               "out of range");
}

TEST_F(ModelsTest, ProtectionDedupsInput) {
  space_.protect_elements({1, 1, 2, 2, 2});
  EXPECT_EQ(space_.num_protected(), 2u);
  EXPECT_TRUE(space_.is_protected(1));
  EXPECT_FALSE(space_.is_protected(0));
}

}  // namespace
}  // namespace bdlfi::fault
