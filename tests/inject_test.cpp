// Campaign orchestration: sweeps, layer campaigns, random-FI baseline,
// decision-boundary maps; cross-validation of BDLFI vs the i.i.d. baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "data/toy2d.h"
#include "inject/boundary.h"
#include "inject/campaign.h"
#include "inject/random_fi.h"
#include "nn/builders.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace bdlfi::inject {
namespace {

class InjectTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng{1};
    data_ = new data::Dataset(data::make_two_moons(200, 0.08, rng));
    util::Rng init{2};
    net_ = new nn::Network(nn::make_mlp({2, 16, 2}, init));
    train::TrainConfig config;
    config.epochs = 30;
    config.lr = 0.05;
    config.seed = 3;
    train::fit(*net_, *data_, *data_, config);
    bfn_ = new BayesianFaultNetwork(*net_, TargetSpec::all_parameters(),
                                    AvfProfile::uniform(), data_->inputs,
                                    data_->labels);
  }
  static void TearDownTestSuite() {
    delete bfn_;
    delete net_;
    delete data_;
  }

  static nn::Network* net_;
  static data::Dataset* data_;
  static BayesianFaultNetwork* bfn_;
};

nn::Network* InjectTest::net_ = nullptr;
data::Dataset* InjectTest::data_ = nullptr;
BayesianFaultNetwork* InjectTest::bfn_ = nullptr;

TEST(LogSpace, EndpointsAndMonotonicity) {
  const auto grid = log_space(1e-5, 1e-1, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_NEAR(grid.front(), 1e-5, 1e-12);
  EXPECT_NEAR(grid.back(), 1e-1, 1e-6);
  EXPECT_NEAR(grid[2], 1e-3, 1e-9);
  EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
}

TEST(LogSpace, DegenerateRequestsAreGraceful) {
  EXPECT_TRUE(log_space(1e-5, 1e-1, 0).empty());

  const auto single = log_space(1e-3, 1e-1, 1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0], 1e-3);

  // A collapsed range repeats the point instead of dividing by zero spacing.
  const auto collapsed = log_space(1e-2, 1e-2, 4);
  ASSERT_EQ(collapsed.size(), 4u);
  for (const double v : collapsed) {
    EXPECT_DOUBLE_EQ(v, 1e-2);
    EXPECT_FALSE(std::isnan(v));
  }
}

TEST(LogSpaceDeathTest, RejectsInvalidBounds) {
  EXPECT_DEATH(log_space(0.0, 1e-1, 3), "log_space");
  EXPECT_DEATH(log_space(-1e-3, 1e-1, 3), "log_space");
  EXPECT_DEATH(log_space(1e-1, 1e-5, 3), "log_space");
}

TEST_F(InjectTest, SweepErrorGrowsWithP) {
  mcmc::RunnerConfig runner;
  runner.num_chains = 2;
  runner.mh.samples = 60;
  runner.mh.burn_in = 20;
  runner.seed = 4;
  const SweepResult sweep =
      run_bdlfi_sweep(*bfn_, {1e-5, 1e-2}, runner);
  ASSERT_EQ(sweep.points.size(), 2u);
  // The two-regime claim of Fig. 2: tiny p ≈ golden error; large p >> golden.
  EXPECT_LT(sweep.points[0].mean_error, sweep.golden_error + 3.0);
  EXPECT_GT(sweep.points[1].mean_error, sweep.golden_error + 5.0);
  EXPECT_GT(sweep.points[1].mean_flips, sweep.points[0].mean_flips);
}

TEST_F(InjectTest, LayerCampaignCoversParamLayersOnly) {
  mcmc::RunnerConfig runner;
  runner.num_chains = 2;
  runner.mh.samples = 30;
  runner.mh.burn_in = 10;
  runner.seed = 5;
  const auto points = run_layer_campaign(*net_, data_->inputs, data_->labels,
                                         AvfProfile::uniform(), 1e-3, runner);
  // MLP 2-16-2: fc1 and fc2 have params; the ReLU between them does not.
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].layer_name, "fc1");
  EXPECT_EQ(points[1].layer_name, "fc2");
  EXPECT_EQ(points[0].layer_params, 2 * 16 + 16);
  for (const auto& pt : points) {
    EXPECT_GE(pt.mean_error, 0.0);
    EXPECT_LE(pt.mean_error, 100.0);
    EXPECT_GT(pt.stats.samples, 0u);
  }
}

TEST_F(InjectTest, RandomFiBasicStatistics) {
  RandomFiConfig config;
  config.injections = 300;
  config.seed = 6;
  const RandomFiResult result = run_random_fi(*bfn_, 1e-3, config);
  EXPECT_EQ(result.injections, 300u);
  EXPECT_EQ(result.error_samples.size(), 300u);
  EXPECT_GE(result.q95, result.q05);
  EXPECT_GT(result.ci95_halfwidth, 0.0);
  EXPECT_GE(result.mean_error, 0.0);
}

TEST_F(InjectTest, RandomFiDeterministicGivenSeedAndWorkers) {
  RandomFiConfig config;
  config.injections = 100;
  config.seed = 7;
  config.workers = 4;
  const RandomFiResult a = run_random_fi(*bfn_, 1e-3, config);
  const RandomFiResult b = run_random_fi(*bfn_, 1e-3, config);
  EXPECT_EQ(a.error_samples, b.error_samples);
}

TEST_F(InjectTest, BdlfiAgreesWithRandomFiBaseline) {
  // The paper's central soundness claim: BDLFI's posterior-predictive error
  // equals what exhaustive random FI measures. Both estimate the same
  // pushforward mean, so they must agree within joint Monte Carlo noise.
  const double p = 2e-3;
  RandomFiConfig fi_config;
  fi_config.injections = 600;
  fi_config.seed = 8;
  const RandomFiResult fi = run_random_fi(*bfn_, p, fi_config);

  mcmc::RunnerConfig runner;
  runner.num_chains = 4;
  runner.mh.samples = 150;
  runner.mh.burn_in = 50;
  runner.seed = 9;
  const SweepResult sweep = run_bdlfi_sweep(*bfn_, {p}, runner);

  const double joint_noise =
      3.0 * (fi.ci95_halfwidth +
             sweep.points[0].stddev_error /
                 std::sqrt(std::max(1.0, sweep.points[0].stats.ess)));
  EXPECT_NEAR(sweep.points[0].mean_error, fi.mean_error,
              std::max(2.0, joint_noise));
}

TEST_F(InjectTest, BoundaryMapHighestNearBoundary) {
  BoundaryConfig config;
  config.grid.x_min = -1.5;
  config.grid.x_max = 2.5;
  config.grid.y_min = -1.0;
  config.grid.y_max = 1.5;
  config.grid.nx = 24;
  config.grid.ny = 16;
  config.p = 2e-3;
  config.masks = 120;
  config.seed = 10;
  const BoundaryMap map = compute_boundary_map(*bfn_, config);
  ASSERT_EQ(map.deviation_probability.size(), 24u * 16u);
  ASSERT_EQ(map.golden_prediction.size(), 24u * 16u);

  // Partition cells into boundary-adjacent (a 4-neighbour has a different
  // golden prediction) vs interior; mean fault-deviation probability must be
  // higher near the boundary — the paper's Fig. 1-③ claim.
  double boundary_sum = 0.0, interior_sum = 0.0;
  std::size_t boundary_n = 0, interior_n = 0;
  auto pred = [&](std::size_t r, std::size_t c) {
    return map.golden_prediction[r * 24 + c];
  };
  for (std::size_t r = 1; r + 1 < 16; ++r) {
    for (std::size_t c = 1; c + 1 < 24; ++c) {
      const bool near_boundary =
          pred(r, c) != pred(r - 1, c) || pred(r, c) != pred(r + 1, c) ||
          pred(r, c) != pred(r, c - 1) || pred(r, c) != pred(r, c + 1);
      const double v = map.deviation_probability[r * 24 + c];
      if (near_boundary) {
        boundary_sum += v;
        ++boundary_n;
      } else {
        interior_sum += v;
        ++interior_n;
      }
    }
  }
  ASSERT_GT(boundary_n, 0u);
  ASSERT_GT(interior_n, 0u);
  EXPECT_GT(boundary_sum / static_cast<double>(boundary_n),
            interior_sum / static_cast<double>(interior_n));
}

TEST_F(InjectTest, BoundaryMapProbabilitiesInUnitRange) {
  BoundaryConfig config;
  config.grid.nx = 8;
  config.grid.ny = 6;
  config.p = 1e-3;
  config.masks = 40;
  config.seed = 11;
  const BoundaryMap map = compute_boundary_map(*bfn_, config);
  for (double v : map.deviation_probability) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  for (double lg : map.log10_probability) {
    EXPECT_LE(lg, 0.0);  // probabilities ≤ 1
    EXPECT_TRUE(std::isfinite(lg));  // floored, never -inf
  }
}

}  // namespace
}  // namespace bdlfi::inject
