// Gradient-sensitivity analysis and selective hardening: ranking properties,
// alignment with the injection space, and the end-to-end effect of
// protecting the most sensitive sites.
#include "bayes/sensitivity.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "bayes/fault_network.h"
#include "data/toy2d.h"
#include "inject/random_fi.h"
#include "nn/builders.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace bdlfi::bayes {
namespace {

class SensitivityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng{1};
    data_ = new data::Dataset(data::make_two_moons(300, 0.08, rng));
    util::Rng init{2};
    net_ = new nn::Network(nn::make_mlp({2, 16, 2}, init));
    train::TrainConfig config;
    config.epochs = 30;
    config.lr = 0.05;
    config.seed = 3;
    train::fit(*net_, *data_, *data_, config);
  }
  static void TearDownTestSuite() {
    delete net_;
    delete data_;
  }
  static nn::Network* net_;
  static data::Dataset* data_;
};

nn::Network* SensitivityTest::net_ = nullptr;
data::Dataset* SensitivityTest::data_ = nullptr;

TEST_F(SensitivityTest, ScoresAlignWithInjectionSpace) {
  const fault::TargetSpec spec = fault::TargetSpec::all_parameters();
  const auto report = compute_sensitivity(*net_, spec, data_->inputs,
                                          data_->labels);
  nn::Network probe = net_->clone();
  fault::InjectionSpace space(probe, spec);
  EXPECT_EQ(static_cast<std::int64_t>(report.element_scores.size()),
            space.total_elements());
  EXPECT_EQ(report.ranking.size(), report.element_scores.size());
}

TEST_F(SensitivityTest, RankingIsDescendingAndPermutes) {
  const auto report =
      compute_sensitivity(*net_, fault::TargetSpec::all_parameters(),
                          data_->inputs, data_->labels);
  for (std::size_t i = 1; i < report.ranking.size(); ++i) {
    EXPECT_GE(report.element_scores[static_cast<std::size_t>(
                  report.ranking[i - 1])],
              report.element_scores[static_cast<std::size_t>(
                  report.ranking[i])]);
  }
  std::vector<std::int64_t> sorted = report.ranking;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], static_cast<std::int64_t>(i));
  }
}

TEST_F(SensitivityTest, TopFractionSizes) {
  const auto report =
      compute_sensitivity(*net_, fault::TargetSpec::all_parameters(),
                          data_->inputs, data_->labels);
  const auto top10 = report.top_fraction(0.1);
  EXPECT_EQ(top10.size(),
            static_cast<std::size_t>(0.1 * report.ranking.size()));
  EXPECT_EQ(report.top_fraction(1.0).size(), report.ranking.size());
  // Even a tiny fraction returns at least one element.
  EXPECT_GE(report.top_fraction(1e-9).size(), 1u);
}

TEST_F(SensitivityTest, GoldenNetworkUntouched) {
  nn::Network before = net_->clone();
  compute_sensitivity(*net_, fault::TargetSpec::all_parameters(),
                      data_->inputs, data_->labels);
  const auto a = before.params();
  const auto b = net_->params();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(tensor::Tensor::max_abs_diff(*a[i].value, *b[i].value), 0.0f);
  }
}

TEST_F(SensitivityTest, WeightOnlyModeMatchesMagnitudes) {
  const auto report =
      compute_sensitivity(*net_, fault::TargetSpec::all_parameters(),
                          data_->inputs, data_->labels,
                          SensitivityScore::kWeightOnly);
  nn::Network probe = net_->clone();
  fault::InjectionSpace space(probe, {});
  for (std::int64_t e = 0; e < space.total_elements(); ++e) {
    EXPECT_FLOAT_EQ(
        static_cast<float>(report.element_scores[static_cast<std::size_t>(e)]),
        std::abs(*space.element_ptr(e)));
  }
}

TEST_F(SensitivityTest, HardeningTopSitesReducesError) {
  // Protect the 25% most sensitive parameter elements and compare random-FI
  // error at a rate where faults hurt — hardened must beat unhardened.
  // Use weight-magnitude scoring: bit flips hurt most on large-magnitude
  // weights regardless of gradient direction.
  const fault::TargetSpec spec = fault::TargetSpec::all_parameters();
  const auto report = compute_sensitivity(
      *net_, spec, data_->inputs, data_->labels,
      SensitivityScore::kWeightOnly);

  BayesianFaultNetwork plain(*net_, spec, fault::AvfProfile::uniform(),
                             data_->inputs, data_->labels);
  BayesianFaultNetwork hardened(*net_, spec, fault::AvfProfile::uniform(),
                                data_->inputs, data_->labels);
  hardened.mutable_space().protect_elements(report.top_fraction(0.25));

  inject::RandomFiConfig config;
  config.injections = 400;
  config.seed = 4;
  const auto base = inject::run_random_fi(plain, 3e-3, config);
  const auto prot = inject::run_random_fi(hardened, 3e-3, config);
  EXPECT_LT(prot.mean_error, base.mean_error);
}

TEST_F(SensitivityTest, EmptySpecAborts) {
  fault::TargetSpec spec;
  spec.layer_names = {"missing_layer"};
  EXPECT_DEATH(compute_sensitivity(*net_, spec, data_->inputs, data_->labels),
               "selects no parameters");
}

}  // namespace
}  // namespace bdlfi::bayes
