// Later-wave extensions: VGG-11 builder, per-channel quantization,
// Kolmogorov–Smirnov two-sample test, FIT-rate unit conversions.
#include <gtest/gtest.h>

#include <cmath>

#include "data/toy2d.h"
#include "fault/fit.h"
#include "nn/builders.h"
#include "nn/conv.h"
#include "nn/layers.h"
#include "quant/convert.h"
#include "util/rng.h"
#include "util/stats.h"

namespace bdlfi {
namespace {

using tensor::Shape;
using tensor::Tensor;

// --- VGG-11 --------------------------------------------------------------------

TEST(Vgg11, ForwardShapeAndStructure) {
  util::Rng rng{1};
  nn::VggConfig config;
  config.width_multiplier = 0.0625;
  config.image_size = 32;
  config.num_classes = 7;
  nn::Network net = nn::make_vgg11(config, rng);
  // 8 conv triplets (conv+bn+relu) + 5 pools + flatten + fc = 31 layers.
  EXPECT_EQ(net.num_layers(), 8u * 3 + 5 + 2);
  Tensor x{Shape{2, 3, 32, 32}};
  EXPECT_EQ(net.forward(x).shape(), Shape({2, 7}));
}

TEST(Vgg11, FullWidthParamCountBand) {
  util::Rng rng{2};
  nn::VggConfig config;  // width 1.0
  nn::Network net = nn::make_vgg11(config, rng);
  // VGG-11 conv trunk ≈ 9.2M params + BN + 512→10 head.
  EXPECT_GT(net.num_params(), 9'000'000);
  EXPECT_LT(net.num_params(), 10'000'000);
}

TEST(Vgg11, RejectsIndivisibleImageSize) {
  util::Rng rng{3};
  nn::VggConfig config;
  config.image_size = 20;
  EXPECT_DEATH(nn::make_vgg11(config, rng), "divisible");
}

TEST(Vgg11, QuantizesAndInjects) {
  util::Rng rng{4};
  nn::VggConfig config;
  config.width_multiplier = 0.0625;
  nn::Network net = nn::make_vgg11(config, rng);
  nn::Network qnet = quant::quantize_network(net);
  const auto refs = quant::collect_quant_buffers(qnet);
  EXPECT_EQ(refs.size(), 9u);  // 8 convs + fc
  Tensor x{Shape{1, 3, 32, 32}};
  EXPECT_EQ(qnet.forward(x).shape(), Shape({1, 10}));
}

// --- per-channel quantization -----------------------------------------------

TEST(PerChannelQuant, TighterThanPerTensorOnSkewedRows) {
  // Rows with wildly different magnitudes: per-tensor scale wastes codes on
  // the small rows; per-channel recovers them.
  Tensor w{Shape{2, 4},
           {100.0f, -50.0f, 75.0f, -100.0f, 0.01f, -0.005f, 0.0075f, 0.01f}};
  quant::QuantDense per_tensor(w, Tensor{}, /*per_channel=*/false);
  quant::QuantDense per_channel(w, Tensor{}, /*per_channel=*/true);
  // The big row saturates both modes equally; the benefit shows on the
  // small-magnitude row, which per-tensor scaling rounds entirely to zero.
  auto row1_err = [&](const Tensor& deq) {
    float worst = 0.0f;
    for (std::int64_t i = 0; i < 4; ++i) {
      worst = std::max(worst, std::abs(deq.at(1, i) - w.at(1, i)));
    }
    return worst;
  };
  const float err_tensor = row1_err(per_tensor.dequantized_weight());
  const float err_channel = row1_err(per_channel.dequantized_weight());
  EXPECT_LT(err_channel, err_tensor * 0.05f);
  EXPECT_TRUE(per_channel.per_channel());
  // Each row's scale covers that row's max.
  EXPECT_FLOAT_EQ(per_channel.weight_params(0).scale, 100.0f / 127.0f);
  EXPECT_FLOAT_EQ(per_channel.weight_params(1).scale, 0.01f / 127.0f);
}

TEST(PerChannelQuant, CloneRoundTrips) {
  util::Rng rng{5};
  Tensor w = Tensor::randn(Shape{6, 8}, rng);
  quant::QuantDense layer(w, Tensor{}, true);
  auto copy = layer.clone();
  Tensor x = Tensor::randn(Shape{3, 8}, rng);
  EXPECT_EQ(Tensor::max_abs_diff(layer.forward(x, false),
                                 copy->forward(x, false)),
            0.0f);
}

TEST(PerChannelQuant, NetworkConversionOption) {
  util::Rng rng{6};
  nn::Network net = nn::make_mlp({4, 8, 2}, rng);
  quant::QuantizeOptions options;
  options.per_channel = true;
  nn::Network qnet = quant::quantize_network(net, options);
  auto* qdense = dynamic_cast<quant::QuantDense*>(&qnet.layer(0));
  ASSERT_NE(qdense, nullptr);
  EXPECT_TRUE(qdense->per_channel());
}

TEST(PerChannelQuant, ConvPerOutputChannel) {
  util::Rng rng{7};
  Tensor w = Tensor::randn(Shape{3, 2, 3, 3}, rng);
  // Scale channel 2 up massively.
  for (std::int64_t i = 0; i < 2 * 9; ++i) {
    w[2 * 2 * 9 + i] *= 1000.0f;
  }
  tensor::Conv2dSpec spec;
  quant::QuantConv2d per_tensor(w, Tensor{}, spec, false);
  quant::QuantConv2d per_channel(w, Tensor{}, spec, true);
  // Error on the two *small* output channels (elements before channel 2).
  auto small_err = [&](const Tensor& deq) {
    float worst = 0.0f;
    for (std::int64_t i = 0; i < 2 * 2 * 9; ++i) {
      worst = std::max(worst, std::abs(deq[i] - w[i]));
    }
    return worst;
  };
  EXPECT_LT(small_err(per_channel.dequantized_weight()),
            0.05f * small_err(per_tensor.dequantized_weight()));
}

// --- waveforms & rectangular convolution ----------------------------------------

TEST(Waveforms, ShapeLabelsAndRange) {
  util::Rng rng{20};
  data::Dataset ds = data::make_waveforms(90, 64, 0.05, rng);
  EXPECT_EQ(ds.inputs.shape(), Shape({90, 1, 1, 64}));
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_GE(ds.labels[i], 0);
    EXPECT_LT(ds.labels[i], 3);
  }
  // Amplitude-bounded (amp ≤ 1.3 + noise tail).
  for (std::int64_t i = 0; i < ds.inputs.numel(); ++i) {
    EXPECT_LT(std::abs(ds.inputs[i]), 2.0f);
  }
}

TEST(Waveforms, ClassesSeparableByWaveShape) {
  // Squares have higher mean |x| than sines of the same amplitude family.
  util::Rng rng{21};
  data::Dataset ds = data::make_waveforms(600, 64, 0.02, rng);
  double sine_energy = 0.0, square_energy = 0.0;
  std::size_t n_sine = 0, n_square = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    double mean_abs = 0.0;
    for (std::int64_t t = 0; t < 64; ++t) {
      mean_abs += std::abs(ds.inputs[static_cast<std::int64_t>(i) * 64 + t]);
    }
    mean_abs /= 64.0;
    if (ds.labels[i] == 0) {
      sine_energy += mean_abs;
      ++n_sine;
    } else if (ds.labels[i] == 1) {
      square_energy += mean_abs;
      ++n_square;
    }
  }
  EXPECT_GT(square_energy / static_cast<double>(n_square),
            sine_energy / static_cast<double>(n_sine) * 1.2);
}

TEST(RectangularConv, OneByKMatchesNaive) {
  util::Rng rng{22};
  nn::Conv2d fir(1, 3, /*kernel_h=*/1, /*kernel_w=*/5, 1, 0, 2);
  fir.init_he(rng);
  Tensor x = Tensor::randn(Shape{2, 1, 1, 16}, rng);
  Tensor y = fir.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({2, 3, 1, 16}));
  // Interior sample check against direct correlation.
  const Tensor& w = fir.weight();
  for (std::int64_t t = 2; t < 14; ++t) {
    float acc = 0.0f;
    for (std::int64_t k = 0; k < 5; ++k) {
      acc += x.at(0, 0, 0, t - 2 + k) * w.at(1, 0, 0, k);
    }
    EXPECT_NEAR(y.at(0, 1, 0, t), acc, 1e-4f);
  }
}

TEST(RectangularConv, CloneKeepsGeometry) {
  util::Rng rng{23};
  nn::Conv2d fir(1, 2, 1, 7, 1, 0, 3);
  fir.init_he(rng);
  auto copy = fir.clone();
  Tensor x = Tensor::randn(Shape{1, 1, 1, 20}, rng);
  EXPECT_EQ(Tensor::max_abs_diff(fir.forward(x, false),
                                 copy->forward(x, false)),
            0.0f);
}

TEST(RectangularConv, BackwardGradientSpotCheck) {
  util::Rng rng{24};
  nn::Conv2d fir(1, 2, 1, 5, 1, 0, 2);
  fir.init_he(rng);
  Tensor x = Tensor::randn(Shape{1, 1, 1, 12}, rng);
  Tensor out = fir.forward(x, true);
  fir.zero_grad();
  Tensor grad_in = fir.backward(Tensor::full(out.shape(), 1.0f));
  auto loss = [&](const Tensor& input) {
    Tensor y = fir.forward(input, false);
    double s = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) s += y[i];
    return s;
  };
  const float eps = 1e-2f;
  for (std::int64_t idx : {0L, 6L, 11L}) {
    Tensor xp = x, xm = x;
    xp[idx] += eps;
    xm[idx] -= eps;
    EXPECT_NEAR(grad_in[idx], (loss(xp) - loss(xm)) / (2.0 * eps), 1e-2);
  }
}

// --- Kolmogorov–Smirnov -------------------------------------------------------

TEST(KsTest, SameDistributionHighPValue) {
  util::Rng ra{8}, rb{88};
  std::vector<double> a, b;
  for (int i = 0; i < 800; ++i) {
    a.push_back(ra.normal());
    b.push_back(rb.normal());
  }
  const auto result = util::ks_two_sample(a, b);
  EXPECT_LT(result.statistic, 0.08);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(KsTest, ShiftedDistributionRejected) {
  util::Rng rng{9};
  std::vector<double> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.normal(0.0, 1.0));
    b.push_back(rng.normal(1.0, 1.0));
  }
  const auto result = util::ks_two_sample(a, b);
  EXPECT_GT(result.statistic, 0.3);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsTest, IdenticalSamplesStatZero) {
  std::vector<double> a{1, 2, 3, 4, 5};
  const auto result = util::ks_two_sample(a, a);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_GT(result.p_value, 0.99);
}

TEST(KsTest, DisjointSupportsStatOne) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{10, 11, 12};
  EXPECT_DOUBLE_EQ(util::ks_two_sample(a, b).statistic, 1.0);
}

// --- FIT conversions ------------------------------------------------------------

TEST(Fit, RoundTrip) {
  const double p = fault::fit_to_bit_probability(600.0, 24.0);
  EXPECT_NEAR(fault::bit_probability_to_fit(p, 24.0), 600.0, 1e-9);
}

TEST(Fit, KnownMagnitude) {
  // 1000 FIT/Mb for one hour: 1000 / 1e9 / 2^20 per bit-hour.
  const double p = fault::fit_to_bit_probability(1000.0, 1.0);
  EXPECT_NEAR(p, 1000.0 / 1e9 / 1048576.0, 1e-20);
}

TEST(Fit, ModelUpsetsScaleWithBits) {
  const double one = fault::expected_model_upsets(600.0, 10.0, 1'000'000);
  const double two = fault::expected_model_upsets(600.0, 10.0, 2'000'000);
  EXPECT_NEAR(two, 2.0 * one, 1e-15);
}

TEST(Fit, HoursToOneUpsetInverse) {
  const std::int64_t bits = 11'000'000LL * 32;  // ResNet-18 fp32
  const double hours = fault::hours_to_one_upset(600.0, bits);
  EXPECT_NEAR(fault::expected_model_upsets(600.0, hours, bits), 1.0, 1e-9);
  // Sanity: 352 Mb of weights at 600 FIT/Mb ≈ 2.1e-4 upsets/hour, so one
  // expected upset lands around 200 days.
  EXPECT_GT(hours, 24.0 * 100.0);
  EXPECT_LT(hours, 24.0 * 300.0);
}

}  // namespace
}  // namespace bdlfi
