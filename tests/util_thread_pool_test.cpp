// Thread pool & parallel_for: completeness, determinism via chunk ids.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace bdlfi::util {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); }, &pool);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(4);
  std::atomic<long long> sum{0};
  parallel_for(1, 10001, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i));
  }, &pool);
  EXPECT_EQ(sum.load(), 50005000LL);
}

TEST(ParallelForChunked, ChunksPartitionRange) {
  ThreadPool pool(4);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(7);
  parallel_for_chunked(10, 110, 7,
                       [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
                         ranges[chunk] = {lo, hi};
                       },
                       &pool);
  std::size_t covered = 0;
  for (const auto& [lo, hi] : ranges) covered += hi - lo;
  EXPECT_EQ(covered, 100u);
  // Contiguity: sorted by chunk id the ranges chain.
  std::size_t cursor = 10;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, cursor);
    cursor = hi;
  }
  EXPECT_EQ(cursor, 110u);
}

TEST(ParallelForChunked, DeterministicPerChunkRngs) {
  // The reproducibility pattern campaigns rely on: one RNG stream per chunk
  // id gives identical results regardless of pool size.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(16, 0.0);
    parallel_for_chunked(0, 16, 16,
                         [&](std::size_t chunk, std::size_t lo,
                             std::size_t hi) {
                           Rng rng{1000 + chunk};
                           for (std::size_t i = lo; i < hi; ++i) {
                             out[i] = rng.uniform();
                           }
                         },
                         &pool);
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ParallelForChunked, MoreChunksThanItemsClamps) {
  std::vector<int> hits(3, 0);
  parallel_for_chunked(0, 3, 100,
                       [&](std::size_t, std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) ++hits[i];
                       });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, NestedUseDoesNotDeadlock) {
  // Outer parallel_for over a small range while inner loops reuse the global
  // pool; waits are local latches, so no deadlock.
  std::atomic<int> total{0};
  ThreadPool pool(4);
  parallel_for(0, 4, [&](std::size_t) {
    std::atomic<int> inner{0};
    for (int i = 0; i < 10; ++i) inner.fetch_add(1);
    total.fetch_add(inner.load());
  }, &pool);
  EXPECT_EQ(total.load(), 40);
}

}  // namespace
}  // namespace bdlfi::util
