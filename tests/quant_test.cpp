// Quantization substrate: code round-trips, quantized layers vs their float
// originals, network conversion, int8 fault space semantics, and the
// float-vs-int8 resilience ordering.
#include <gtest/gtest.h>

#include <cmath>

#include "data/toy2d.h"
#include "inject/random_fi.h"
#include "nn/builders.h"
#include "nn/layers.h"
#include "quant/convert.h"
#include "quant/space.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace bdlfi::quant {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(Quantize, CalibrationCoversMaxAbs) {
  std::vector<float> values{-3.0f, 1.0f, 2.54f};
  const QuantParams params = calibrate_symmetric(values);
  EXPECT_FLOAT_EQ(params.scale, 3.0f / 127.0f);
}

TEST(Quantize, AllZeroBufferGetsUnitScale) {
  std::vector<float> values(8, 0.0f);
  EXPECT_FLOAT_EQ(calibrate_symmetric(values).scale, 1.0f);
}

TEST(Quantize, RoundTripErrorBounded) {
  util::Rng rng{1};
  Tensor w = Tensor::randn(Shape{500}, rng, 0.0f, 0.3f);
  const QuantParams params = calibrate_symmetric(w.flat());
  const auto codes = quantize_buffer(w.flat(), params);
  std::vector<float> back(codes.size());
  dequantize_buffer(codes, params, back);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_LE(std::abs(back[i] - w[static_cast<std::int64_t>(i)]),
              max_roundtrip_error(params) + 1e-7f);
  }
}

TEST(Quantize, ValuesClampAt127) {
  QuantParams params{0.01f};
  EXPECT_EQ(quantize_value(100.0f, params), 127);
  EXPECT_EQ(quantize_value(-100.0f, params), -127);
  EXPECT_EQ(quantize_value(0.0f, params), 0);
}

TEST(QuantDenseLayer, MatchesFloatDenseWithinQuantError) {
  util::Rng rng{2};
  nn::Dense dense(8, 4);
  dense.init_he(rng);
  QuantDense qdense(dense.weight(), dense.bias());

  Tensor x = Tensor::randn(Shape{5, 8}, rng);
  Tensor yf = dense.forward(x, false);
  Tensor yq = qdense.forward(x, false);
  // Worst-case output error: in_features * max|x| * scale/2.
  const float bound =
      8.0f * 4.0f * max_roundtrip_error(qdense.weight_params());
  EXPECT_LT(Tensor::max_abs_diff(yf, yq), bound);
}

TEST(QuantDenseLayer, BackwardAborts) {
  util::Rng rng{3};
  nn::Dense dense(2, 2);
  dense.init_he(rng);
  QuantDense qdense(dense.weight(), dense.bias());
  Tensor g{Shape{1, 2}};
  EXPECT_DEATH(qdense.backward(g), "inference-only");
}

TEST(QuantizeNetwork, MlpPredictionsMostlyAgree) {
  util::Rng rng{4};
  data::Dataset ds = data::make_two_moons(300, 0.08, rng);
  util::Rng init{5};
  nn::Network net = nn::make_mlp({2, 16, 2}, init);
  train::TrainConfig config;
  config.epochs = 25;
  config.lr = 0.05;
  config.seed = 6;
  train::fit(net, ds, ds, config);

  nn::Network qnet = quantize_network(net);
  const auto pf = net.predict(ds.inputs);
  const auto pq = qnet.predict(ds.inputs);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < pf.size(); ++i) {
    if (pf[i] == pq[i]) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(pf.size()),
            0.97);
}

TEST(QuantizeNetwork, PreservesLayerNamesAndCount) {
  util::Rng rng{7};
  nn::Network net = nn::make_mlp({2, 8, 3}, rng);
  nn::Network qnet = quantize_network(net);
  ASSERT_EQ(qnet.num_layers(), net.num_layers());
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    EXPECT_EQ(qnet.layer_name(i), net.layer_name(i));
  }
  EXPECT_EQ(qnet.layer_kind(0), "qdense");
  EXPECT_EQ(qnet.layer_kind(1), "relu");
}

TEST(QuantizeNetwork, ResnetConversionRuns) {
  util::Rng rng{8};
  nn::ResNetConfig config;
  config.width_multiplier = 0.0625;
  nn::Network net = nn::make_resnet18(config, rng);
  nn::Network qnet = quantize_network(net);
  EXPECT_EQ(qnet.layer_kind(0), "qconv");
  EXPECT_EQ(qnet.layer_kind(3), "qblock");
  Tensor x{Shape{1, 3, 16, 16}};
  EXPECT_EQ(qnet.forward(x).shape(), Shape({1, 10}));
  // All 20 convs (2 per block ×8 + 3 projections + stem) + fc have buffers.
  nn::Network probe = qnet.clone();
  const auto refs = collect_quant_buffers(probe);
  EXPECT_EQ(refs.size(), 1u + 16u + 3u + 1u);
}

TEST(QuantSpace, TotalsAndSelfInverseApply) {
  util::Rng rng{9};
  nn::Network net = nn::make_mlp({4, 8, 2}, rng);
  nn::Network qnet = quantize_network(net);
  QuantInjectionSpace space(qnet);
  EXPECT_EQ(space.total_elements(), 4 * 8 + 8 * 2);  // int8 weights only
  EXPECT_EQ(space.total_bits(), space.total_elements() * 8);

  util::Rng mask_rng{10};
  const fault::FaultMask mask = space.sample_mask(0.05, mask_rng);
  ASSERT_GT(mask.num_flips(), 0u);
  std::vector<std::int8_t> before;
  for (std::int64_t e = 0; e < space.total_elements(); ++e) {
    before.push_back(*space.element_ptr(e));
  }
  space.apply(mask);
  bool changed = false;
  for (std::int64_t e = 0; e < space.total_elements(); ++e) {
    changed |= *space.element_ptr(e) != before[static_cast<std::size_t>(e)];
  }
  EXPECT_TRUE(changed);
  space.apply(mask);
  for (std::int64_t e = 0; e < space.total_elements(); ++e) {
    EXPECT_EQ(*space.element_ptr(e), before[static_cast<std::size_t>(e)]);
  }
}

TEST(QuantSpace, SampleRateMatchesP) {
  util::Rng rng{11};
  nn::Network net = nn::make_mlp({8, 32, 4}, rng);
  nn::Network qnet = quantize_network(net);
  QuantInjectionSpace space(qnet);
  util::Rng mask_rng{12};
  double total = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(space.sample_mask(0.01, mask_rng).num_flips());
  }
  const double expected = 0.01 * static_cast<double>(space.total_bits());
  EXPECT_NEAR(total / trials, expected, 0.15 * expected);
}

class QuantFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng{13};
    data_ = new data::Dataset(data::make_two_moons(250, 0.08, rng));
    util::Rng init{14};
    net_ = new nn::Network(nn::make_mlp({2, 16, 2}, init));
    train::TrainConfig config;
    config.epochs = 30;
    config.lr = 0.05;
    config.seed = 15;
    train::fit(*net_, *data_, *data_, config);
    qnet_ = new nn::Network(quantize_network(*net_));
  }
  static void TearDownTestSuite() {
    delete qnet_;
    delete net_;
    delete data_;
  }
  static nn::Network* net_;
  static nn::Network* qnet_;
  static data::Dataset* data_;
};

nn::Network* QuantFaultTest::net_ = nullptr;
nn::Network* QuantFaultTest::qnet_ = nullptr;
data::Dataset* QuantFaultTest::data_ = nullptr;

TEST_F(QuantFaultTest, EmptyMaskIsGolden) {
  QuantFaultNetwork qfn(*qnet_, data_->inputs, data_->labels);
  const auto outcome = qfn.evaluate_mask(fault::FaultMask{});
  EXPECT_DOUBLE_EQ(outcome.classification_error, qfn.golden_error());
  EXPECT_DOUBLE_EQ(outcome.deviation, 0.0);
}

TEST_F(QuantFaultTest, EvaluateRestoresCodes) {
  QuantFaultNetwork qfn(*qnet_, data_->inputs, data_->labels);
  util::Rng rng{16};
  const auto mask = qfn.sample_prior_mask(0.02, rng);
  const auto a = qfn.evaluate_mask(mask);
  const auto b = qfn.evaluate_mask(mask);
  EXPECT_DOUBLE_EQ(a.classification_error, b.classification_error);
}

TEST_F(QuantFaultTest, Int8NeverProducesNaN) {
  // int8 weights dequantize to bounded values — no exponent field, so the
  // "detected" (NaN/Inf) channel must stay empty even at brutal flip rates.
  QuantFaultNetwork qfn(*qnet_, data_->inputs, data_->labels);
  const auto result = run_quant_random_fi(qfn, 0.05, 100, 17);
  EXPECT_EQ(result.mean_detected, 0.0);
}

TEST_F(QuantFaultTest, Int8MoreResilientThanFloatAtMatchedRate) {
  // Headline quantized-inference result (Ares-style): at the same per-bit
  // flip probability, int8 weight storage yields less output corruption than
  // float32, because no single bit carries 2^96 of magnitude.
  const double p = 1e-3;
  bayes::BayesianFaultNetwork float_net(
      *net_, bayes::TargetSpec::weights_only(), fault::AvfProfile::uniform(),
      data_->inputs, data_->labels);
  inject::RandomFiConfig fi;
  fi.injections = 400;
  fi.seed = 18;
  const auto float_result = inject::run_random_fi(float_net, p, fi);

  QuantFaultNetwork qfn(*qnet_, data_->inputs, data_->labels);
  const auto quant_result = run_quant_random_fi(qfn, p, 400, 19);

  EXPECT_LT(quant_result.mean_deviation, float_result.mean_deviation);
}

TEST_F(QuantFaultTest, DeterministicForSeed) {
  QuantFaultNetwork qfn(*qnet_, data_->inputs, data_->labels);
  const auto a = run_quant_random_fi(qfn, 1e-3, 80, 20);
  const auto b = run_quant_random_fi(qfn, 1e-3, 80, 20);
  EXPECT_DOUBLE_EQ(a.mean_error, b.mean_error);
  EXPECT_DOUBLE_EQ(a.mean_flips, b.mean_flips);
}

}  // namespace
}  // namespace bdlfi::quant
