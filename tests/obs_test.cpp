// Observability layer: exact sums under concurrent metric updates, trace
// spans serializing to valid Chrome trace JSON, the JSON writer/parser
// roundtrip, and the CampaignReporter mirroring the completeness runner's
// trajectory round for round.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bayes/targets.h"
#include "data/toy2d.h"
#include "mcmc/runner.h"
#include "nn/builders.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace bdlfi::obs {
namespace {

TEST(Metrics, ConcurrentCounterUpdatesSumExactly) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test.hits");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      // Lookup from every thread must hand back the same counter.
      Counter& c = registry.counter("test.hits");
      for (std::size_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Metrics, ConcurrentHistogramObservationsSumExactly) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("test.latency", {1.0, 2.0, 4.0});
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 5000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hist, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        hist.observe(static_cast<double>((t + i) % 6));  // 0..5: hits overflow
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto b : hist.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(Metrics, HistogramBucketBoundariesAreInclusive) {
  Histogram hist({1.0, 2.0});
  hist.observe(0.5);  // <= 1.0
  hist.observe(1.0);  // <= 1.0 (boundary inclusive)
  hist.observe(1.5);  // <= 2.0
  hist.observe(9.0);  // overflow
  const auto buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_DOUBLE_EQ(hist.sum(), 12.0);
}

TEST(Metrics, ConcurrentGaugeAddIsLossless) {
  Gauge gauge;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&gauge] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        gauge.add(1.0);
        gauge.add(-1.0);
      }
      gauge.add(1.0);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kThreads));
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test.n");
  Gauge& gauge = registry.gauge("test.g");
  counter.add(7);
  gauge.set(3.5);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);  // same object, zeroed in place
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(&registry.counter("test.n"), &counter);
  EXPECT_EQ(registry.snapshot().size(), 2u);
}

TEST(Metrics, RegistryJsonIsParseable) {
  MetricsRegistry registry;
  registry.counter("a.count").add(3);
  registry.gauge("b.gauge").set(1.25);
  registry.histogram("c.hist", {1.0}).observe(0.5);
  std::string error;
  const auto doc = json_parse(registry.to_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_TRUE(doc->is_object());
  const JsonValue* count = doc->find("a.count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->as_number(), 3.0);
  const JsonValue* hist = doc->find("c.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_TRUE(hist->is_object());
  EXPECT_NE(hist->find("buckets"), nullptr);
}

TEST(Json, WriterParserRoundtrip) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "two\nlines \"quoted\"");
  w.field("pi", 3.25);
  w.field("n", std::uint64_t{42});
  w.field("neg", std::int64_t{-7});
  w.field("flag", true);
  w.key("nothing").null();
  w.key("xs").begin_array();
  w.number(1.0);
  w.string("s");
  w.boolean(false);
  w.begin_object().field("k", "v").end_object();
  w.end_array();
  w.end_object();
  std::string error;
  const auto doc = json_parse(w.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error << " in: " << w.str();
  EXPECT_EQ(doc->find("name")->as_string(), "two\nlines \"quoted\"");
  EXPECT_DOUBLE_EQ(doc->find("pi")->as_number(), 3.25);
  EXPECT_DOUBLE_EQ(doc->find("n")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(doc->find("neg")->as_number(), -7.0);
  EXPECT_TRUE(doc->find("flag")->as_bool());
  EXPECT_TRUE(doc->find("nothing")->is_null());
  const auto& xs = doc->find("xs")->as_array();
  ASSERT_EQ(xs.size(), 4u);
  EXPECT_EQ(xs[3].find("k")->as_string(), "v");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  JsonWriter w;
  w.begin_object();
  w.field("nan", std::nan(""));
  w.field("inf", HUGE_VAL);
  w.end_object();
  const auto doc = json_parse(w.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->find("nan")->is_null());
  EXPECT_TRUE(doc->find("inf")->is_null());
}

TEST(Json, NumberExactRoundTripsDoubles) {
  // %.17g + glibc's correctly-rounded strtod round-trips every finite double;
  // the checkpoint's bit-exact resume depends on it.
  const double nasty[] = {0.1,   1.0 / 3.0, 5e-324,  // min subnormal
                          -0.0,  1e308,     123456789.123456789,
                          3.25,  -2.5e-17};
  for (const double v : nasty) {
    JsonWriter w;
    w.begin_object();
    w.key("v");
    w.number_exact(v);
    w.end_object();
    const auto doc = json_parse(w.str());
    ASSERT_TRUE(doc.has_value()) << w.str();
    const double back = doc->find("v")->as_number();
    EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0)
        << "value " << v << " did not round-trip through " << w.str();
  }
  JsonWriter w;
  w.begin_object();
  w.key("nan");
  w.number_exact(std::nan(""));
  w.end_object();
  const auto doc = json_parse(w.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->find("nan")->is_null());
}

TEST(Json, ParserRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "{\"a\":}", "[1,]", "{\"a\":1,}", "nul", "\"unterminated",
        "{\"a\":1} trailing", "{'a':1}", "[01]", "{\"a\" 1}"}) {
    std::string error;
    EXPECT_FALSE(json_parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(Json, JsonlValidation) {
  EXPECT_TRUE(jsonl_valid("{\"a\":1}\n{\"b\":2}\n"));
  EXPECT_TRUE(jsonl_valid("{\"a\":1}\n\n{\"b\":2}"));  // blank lines skipped
  std::string error;
  EXPECT_FALSE(jsonl_valid("{\"a\":1}\n{oops}\n", &error));
  EXPECT_FALSE(error.empty());
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::global().clear();
    TraceRecorder::global().set_enabled(true);
  }
  void TearDown() override {
    TraceRecorder::global().set_enabled(false);
    TraceRecorder::global().clear();
  }
};

TEST_F(TraceTest, NestedAndConcurrentSpansProduceValidChromeJson) {
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
    }
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([] {
        TraceSpan span("worker");
        TraceSpan overlapping("worker.body");
      });
    }
    for (auto& w : workers) w.join();
  }
  EXPECT_EQ(TraceRecorder::global().event_count(), 2u + 4u * 2u);

  std::string error;
  const auto doc = json_parse(TraceRecorder::global().to_chrome_json(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 10u);
  std::uint64_t outer_dur = 0, inner_dur = 0;
  for (const auto& event : events->as_array()) {
    EXPECT_EQ(event.find("ph")->as_string(), "X");
    EXPECT_EQ(event.find("cat")->as_string(), "bdlfi");
    EXPECT_GE(event.find("tid")->as_number(), 1.0);
    const std::string& name = event.find("name")->as_string();
    if (name == "outer") outer_dur = static_cast<std::uint64_t>(
        event.find("dur")->as_number());
    if (name == "inner") inner_dur = static_cast<std::uint64_t>(
        event.find("dur")->as_number());
  }
  EXPECT_GE(outer_dur, inner_dur);  // the nested span is contained
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  TraceRecorder::global().set_enabled(false);
  {
    TraceSpan span("invisible");
  }
  EXPECT_EQ(TraceRecorder::global().event_count(), 0u);
}

TEST(Reporter, RoundEventsReachSubscribersAndJsonl) {
  const std::string path = ::testing::TempDir() + "obs_test_metrics.jsonl";
  std::size_t seen = 0;
  {
    CampaignReporter::Options options;
    options.metrics_path = path;
    options.label = "unit";
    CampaignReporter reporter(options);
    reporter.on_round([&seen](const RoundEvent& e) {
      seen += e.round;
    });
    reporter.begin(1e-3, 2, 10);
    RoundEvent event;
    event.round = 1;
    event.cumulative_samples = 20;
    event.mean_error = 12.5;
    reporter.round(event);
    event.round = 2;
    event.cumulative_samples = 40;
    reporter.round(event);
    reporter.end(true, 2);
    EXPECT_EQ(reporter.events().size(), 2u);
  }
  EXPECT_EQ(seen, 3u);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  std::string error;
  EXPECT_TRUE(jsonl_valid(text, &error)) << error;
  // begin + 2 rounds + end + metrics snapshot.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
  EXPECT_NE(text.find("\"event\":\"campaign_begin\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"campaign_end\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"metrics\""), std::string::npos);
}

TEST(Reporter, ChainHealthAndCheckpointEventsAreValidJsonl) {
  const std::string path = ::testing::TempDir() + "obs_test_health.jsonl";
  {
    CampaignReporter::Options options;
    options.metrics_path = path;
    options.label = "unit";
    options.fsync = true;  // exercise the crash-durable path too
    CampaignReporter reporter(options);
    ChainHealthEvent event;
    event.round = 3;
    event.chain = 1;
    event.status = "retrying";
    event.reason = "timeout";
    event.retries = 1;
    reporter.health_hook()(event);
    event.status = "quarantined";
    event.reason = "nan_divergence";
    event.retries = 3;
    reporter.chain_health(event);
    reporter.checkpoint_saved(3, "/tmp/ck/campaign.ckpt.json");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  std::string error;
  EXPECT_TRUE(jsonl_valid(text, &error)) << error;
  EXPECT_NE(text.find("\"event\":\"chain_health\""), std::string::npos);
  EXPECT_NE(text.find("\"status\":\"retrying\""), std::string::npos);
  EXPECT_NE(text.find("\"status\":\"quarantined\""), std::string::npos);
  EXPECT_NE(text.find("\"reason\":\"nan_divergence\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"checkpoint\""), std::string::npos);
}

TEST(Reporter, MirrorsCompletenessTrajectory) {
  util::Rng rng{1};
  data::Dataset data = data::make_two_moons(120, 0.08, rng);
  util::Rng init{2};
  nn::Network net = nn::make_mlp({2, 8, 2}, init);
  train::TrainConfig train_config;
  train_config.epochs = 10;
  train_config.seed = 3;
  train::fit(net, data, data, train_config);
  bayes::BayesianFaultNetwork bfn(net, bayes::TargetSpec::all_parameters(),
                                  fault::AvfProfile::uniform(), data.inputs,
                                  data.labels);

  const double p = 1e-3;
  mcmc::TargetFactory factory = [p](bayes::BayesianFaultNetwork& n) {
    return std::make_unique<bayes::PriorTarget>(n, p);
  };
  mcmc::RunnerConfig config;
  config.num_chains = 2;
  config.mh.samples = 25;
  config.mh.burn_in = 10;
  config.seed = 4;
  CampaignReporter reporter({});
  config.round_hook = reporter.hook();
  mcmc::CompletenessCriterion criterion;
  criterion.rhat_threshold = 1.5;
  criterion.mean_rel_tol = 0.5;
  criterion.max_rounds = 4;
  const mcmc::CompletenessResult result =
      mcmc::run_until_complete(bfn, factory, p, config, criterion);

  // One reporter event per round, mirroring the trajectory exactly.
  ASSERT_EQ(reporter.events().size(), result.trajectory.size());
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    const RoundEvent& event = reporter.events()[i];
    const auto& round = result.trajectory[i];
    EXPECT_EQ(event.round, i + 1);
    EXPECT_DOUBLE_EQ(event.p, p);
    EXPECT_EQ(event.cumulative_samples, round.cumulative_samples);
    EXPECT_DOUBLE_EQ(event.mean_error, round.mean_error);
    EXPECT_DOUBLE_EQ(event.rhat, round.rhat);
    EXPECT_DOUBLE_EQ(event.ess, round.ess);
    EXPECT_GE(event.acceptance_rate, 0.0);
    EXPECT_LE(event.acceptance_rate, 1.0);
    EXPECT_GE(event.round_seconds, 0.0);
  }
  EXPECT_EQ(reporter.events().back().network_evals,
            result.final_result.total_network_evals);
}

TEST(Reporter, SingleRoundHookFiresFromRunChains) {
  util::Rng rng{5};
  data::Dataset data = data::make_two_moons(80, 0.08, rng);
  util::Rng init{6};
  nn::Network net = nn::make_mlp({2, 6, 2}, init);
  bayes::BayesianFaultNetwork bfn(net, bayes::TargetSpec::all_parameters(),
                                  fault::AvfProfile::uniform(), data.inputs,
                                  data.labels);
  const double p = 1e-3;
  mcmc::TargetFactory factory = [p](bayes::BayesianFaultNetwork& n) {
    return std::make_unique<bayes::PriorTarget>(n, p);
  };
  mcmc::RunnerConfig config;
  config.num_chains = 2;
  config.mh.samples = 15;
  config.seed = 7;
  std::vector<RoundEvent> events;
  config.round_hook = [&events](const RoundEvent& e) { events.push_back(e); };
  const mcmc::CampaignResult result = mcmc::run_chains(bfn, factory, p, config);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].round, 1u);
  EXPECT_EQ(events[0].cumulative_samples, result.total_samples);
  EXPECT_DOUBLE_EQ(events[0].acceptance_rate, result.mean_acceptance);
}

}  // namespace
}  // namespace bdlfi::obs
