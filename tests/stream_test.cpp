// Tests for the campaign flight-recorder read side: the crash-tolerant
// incremental JSONL reader (obs/stream.h), the multi-stream EventAggregator
// (obs/aggregate.h), histogram quantile export, the reporter's
// campaign_id/seq envelope, and the bench-history regression tracker
// (bench/history.h).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/history.h"
#include "obs/aggregate.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/stream.h"

namespace bdlfi::obs {
namespace {

std::string test_path(const std::string& name) {
  return ::testing::TempDir() + "bdlfi_stream_" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
}

void append_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
}

TEST(Ewma, SeedsOnFirstUpdateThenBlends) {
  Ewma e;
  EXPECT_FALSE(e.seeded());
  EXPECT_DOUBLE_EQ(e.update(100.0), 100.0);
  EXPECT_TRUE(e.seeded());
  // alpha = 0.3: 0.3 * 200 + 0.7 * 100.
  EXPECT_DOUBLE_EQ(e.update(200.0), 130.0);
  e.reset();
  EXPECT_FALSE(e.seeded());
  EXPECT_DOUBLE_EQ(e.update(7.0), 7.0);
}

TEST(Fnv1a64, MatchesReferenceVectorsAndHexFormat) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a64("campaign-a"), fnv1a64("campaign-b"));
  const std::string hex = hex64(0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(hex, "af63dc4c8601ec8c");
  EXPECT_EQ(hex64(0x1ULL).size(), 16u);
  EXPECT_EQ(hex64(0x1ULL), "0000000000000001");
}

TEST(JsonlTailReader, ReadsCompleteLinesAndSkipsBlanks) {
  const std::string path = test_path("basic.jsonl");
  write_file(path, "{\"a\":1}\n\n{\"b\":2}\n");
  JsonlTailReader reader(path);
  std::vector<JsonValue> events;
  EXPECT_EQ(reader.poll(&events), 2u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].find("a")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(events[1].find("b")->as_number(), 2.0);
  EXPECT_EQ(reader.lines_read(), 2u);
  EXPECT_EQ(reader.parse_errors(), 0u);
  // Nothing new: next poll yields nothing.
  EXPECT_EQ(reader.poll(&events), 0u);
  std::filesystem::remove(path);
}

TEST(JsonlTailReader, MissingFileIsNotAnError) {
  JsonlTailReader reader(test_path("never_created.jsonl"));
  std::vector<JsonValue> events;
  EXPECT_EQ(reader.poll(&events), 0u);
  EXPECT_EQ(reader.offset(), 0u);
}

TEST(JsonlTailReader, MalformedCompleteLineIsCountedAndSkipped) {
  const std::string path = test_path("malformed.jsonl");
  write_file(path, "{\"ok\":1}\n{not json}\n{\"ok\":2}\n");
  JsonlTailReader reader(path);
  std::vector<JsonValue> events;
  EXPECT_EQ(reader.poll(&events), 2u);
  EXPECT_EQ(reader.parse_errors(), 1u);
  std::filesystem::remove(path);
}

// The crash-tolerance contract: truncate the stream at EVERY byte boundary
// of the final line. At each cut the reader must yield exactly the complete
// preceding events, never a partial one, and never advance past the torn
// fragment — so that appending the rest of the line resumes cleanly.
TEST(JsonlTailReader, TornTrailingLineAtEveryByteBoundary) {
  const std::string head = "{\"event\":\"round\",\"seq\":1}\n";
  const std::string tail = "{\"event\":\"campaign_end\",\"seq\":2}\n";
  const std::string path = test_path("torn.jsonl");
  for (std::size_t cut = 0; cut < tail.size(); ++cut) {
    write_file(path, head + tail.substr(0, cut));
    JsonlTailReader reader(path);
    std::vector<JsonValue> events;
    reader.poll(&events);
    ASSERT_EQ(events.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(events[0].find("event")->as_string(), "round");
    // The torn fragment is pending: the offset sits at its first byte.
    EXPECT_EQ(reader.offset(), head.size()) << "cut=" << cut;

    // Writer recovers and completes the line: one more poll gets it whole.
    append_file(path, tail.substr(cut));
    events.clear();
    EXPECT_EQ(reader.poll(&events), 1u) << "cut=" << cut;
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].find("event")->as_string(), "campaign_end");
    EXPECT_EQ(reader.offset(), head.size() + tail.size());
  }
  std::filesystem::remove(path);
}

TEST(JsonlTailReader, WriterRestartResetsToNewContent) {
  const std::string path = test_path("restart.jsonl");
  write_file(path, "{\"run\":1,\"x\":1}\n{\"run\":1,\"x\":2}\n");
  JsonlTailReader reader(path);
  std::vector<JsonValue> events;
  EXPECT_EQ(reader.poll(&events), 2u);
  // A new writer truncates and starts over with a shorter file.
  write_file(path, "{\"run\":2}\n");
  events.clear();
  EXPECT_EQ(reader.poll(&events), 1u);
  EXPECT_EQ(reader.truncations(), 1u);
  EXPECT_DOUBLE_EQ(events[0].find("run")->as_number(), 2.0);
  std::filesystem::remove(path);
}

TEST(JsonlTailReader, CrLfLinesAreTolerated) {
  const std::string path = test_path("crlf.jsonl");
  write_file(path, "{\"a\":1}\r\n{\"b\":2}\r\n");
  JsonlTailReader reader(path);
  std::vector<JsonValue> events;
  EXPECT_EQ(reader.poll(&events), 2u);
  EXPECT_EQ(reader.parse_errors(), 0u);
  std::filesystem::remove(path);
}

JsonValue parse(const std::string& text) {
  auto doc = json_parse(text);
  EXPECT_TRUE(doc.has_value()) << text;
  return doc.has_value() ? *doc : JsonValue{};
}

TEST(EventAggregator, MergesRoundsIntoCampaignState) {
  EventAggregator agg;
  agg.ingest(parse(R"({"event":"campaign_begin","label":"t","campaign_id":
      "00000000000000aa","seq":1,"backend":"scalar","p":0.001,"chains":4,
      "samples_per_round":100,"max_rounds":8,"ts_ms":1000})"),
             "s1");
  agg.ingest(parse(R"({"event":"round","label":"t","campaign_id":
      "00000000000000aa","seq":2,"round":1,"rounds_budget":8,"p":0.001,
      "samples":400,"mean_error":1.5,"rhat":1.2,"ess":50,
      "acceptance_rate":0.4,"network_evals":400,"evals_per_sec":100,
      "cache_hit_rate":0.9,"detection_coverage":0.8,"sdc_rate":0.01,
      "outcome_masked":300,"outcome_sdc":4,"outcome_detected":90,
      "outcome_corrected":6,"seconds":2.0,"chains_quarantined":0,
      "degraded":false,"ts_ms":3000})"),
             "s1");
  agg.ingest(parse(R"({"event":"round","label":"t","campaign_id":
      "00000000000000aa","seq":3,"round":2,"rounds_budget":8,"p":0.001,
      "samples":800,"mean_error":1.4,"rhat":1.1,"ess":80,
      "acceptance_rate":0.42,"network_evals":800,"evals_per_sec":120,
      "cache_hit_rate":0.92,"detection_coverage":0.82,"sdc_rate":0.012,
      "outcome_masked":600,"outcome_sdc":9,"outcome_detected":180,
      "outcome_corrected":11,"seconds":2.0,"chains_quarantined":0,
      "degraded":false,"ts_ms":5000})"),
             "s1");
  ASSERT_EQ(agg.campaigns().size(), 1u);
  const CampaignState* c = agg.find("00000000000000aa");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->begun);
  EXPECT_FALSE(c->ended);
  EXPECT_EQ(c->chains, 4u);
  EXPECT_EQ(c->rounds_seen, 2u);
  EXPECT_EQ(c->rounds_budget, 8u);
  EXPECT_DOUBLE_EQ(c->completeness(), 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(c->rhat, 1.1);
  EXPECT_EQ(c->outcome_sdc, 9u);
  EXPECT_EQ(c->samples, 800u);
  // Two rounds at 2s each, 6 budgeted rounds remain.
  EXPECT_NEAR(c->eta_seconds(), 6.0 * 2.0, 1e-9);
  // R-hat dropped 0.1 over one round.
  EXPECT_NEAR(c->rhat_trend(), -0.1, 1e-9);
  EXPECT_EQ(agg.seq_gaps(), 0u);

  agg.ingest(parse(R"({"event":"campaign_end","label":"t","campaign_id":
      "00000000000000aa","seq":4,"converged":true,"rounds":2,
      "ts_ms":6000})"),
             "s1");
  EXPECT_TRUE(c->ended);
  EXPECT_TRUE(c->converged);
  EXPECT_DOUBLE_EQ(c->completeness(), 1.0);
  EXPECT_DOUBLE_EQ(c->eta_seconds(), 0.0);
}

TEST(EventAggregator, KeepsConcurrentCampaignsSeparate) {
  EventAggregator agg;
  agg.ingest(parse(R"({"event":"campaign_begin","label":"a","campaign_id":
      "00000000000000aa","seq":1,"p":0.001,"chains":2,"samples_per_round":10,
      "max_rounds":4})"),
             "a.jsonl");
  agg.ingest(parse(R"({"event":"campaign_begin","label":"b","campaign_id":
      "00000000000000bb","seq":1,"p":0.002,"chains":2,"samples_per_round":10,
      "max_rounds":4})"),
             "b.jsonl");
  ASSERT_EQ(agg.campaigns().size(), 2u);
  EXPECT_EQ(agg.campaigns()[0]->campaign_id, "00000000000000aa");
  EXPECT_EQ(agg.campaigns()[1]->campaign_id, "00000000000000bb");
  // Two streams, each starting at seq 1: no gaps.
  EXPECT_EQ(agg.seq_gaps(), 0u);
}

TEST(EventAggregator, CountsSeqGapsPerStream) {
  EventAggregator agg;
  agg.ingest(parse(R"({"event":"round","campaign_id":"00000000000000aa",
      "seq":1,"round":1})"),
             "s");
  agg.ingest(parse(R"({"event":"round","campaign_id":"00000000000000aa",
      "seq":3,"round":2})"),
             "s");
  EXPECT_EQ(agg.seq_gaps(), 1u);
}

TEST(EventAggregator, HealthCheckpointAndMetricsEvents) {
  EventAggregator agg;
  agg.ingest(parse(R"({"event":"chain_health","campaign_id":
      "00000000000000aa","seq":1,"round":1,"chain":0,"status":"retrying",
      "reason":"timeout","retries":1})"));
  agg.ingest(parse(R"({"event":"chain_health","campaign_id":
      "00000000000000aa","seq":2,"round":2,"chain":0,"status":"quarantined",
      "reason":"timeout","retries":2})"));
  agg.ingest(parse(R"({"event":"checkpoint","campaign_id":
      "00000000000000aa","seq":3,"round":2,"path":"/tmp/ck.json",
      "ts_ms":123})"));
  agg.ingest(parse(R"({"event":"metrics","campaign_id":"00000000000000aa",
      "seq":4,"registry":{"campaign.round_seconds":{"count":5,"sum":10.0,
      "bounds":[1,5],"buckets":[3,2,0],"p50":0.83,"p95":3.5,"p99":4.7}}})"));
  const CampaignState* c = agg.find("00000000000000aa");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->retries, 1u);
  EXPECT_EQ(c->quarantine_events, 1u);
  ASSERT_EQ(c->checkpoints.size(), 1u);
  EXPECT_EQ(c->checkpoints[0].path, "/tmp/ck.json");
  ASSERT_TRUE(c->round_latency.present);
  EXPECT_DOUBLE_EQ(c->round_latency.p50, 0.83);
  EXPECT_EQ(c->round_latency.count, 5u);
}

TEST(EventAggregator, UnknownEventsAreIgnoredNotFatal) {
  EventAggregator agg;
  agg.ingest(parse(R"({"event":"future_event_type","campaign_id":
      "00000000000000aa","seq":1})"));
  agg.ingest(parse(R"([1,2,3])"));
  agg.ingest(parse(R"({"no_event_key":true})"));
  EXPECT_EQ(agg.events_seen(), 3u);
  EXPECT_EQ(agg.events_ignored(), 3u);
}

TEST(HistogramQuantiles, InterpolatesWithinBuckets) {
  Histogram h({1.0, 2.0, 4.0});
  // 4 observations in (0,1], 4 in (1,2], 2 in (2,4].
  for (int i = 0; i < 4; ++i) h.observe(0.5);
  for (int i = 0; i < 4; ++i) h.observe(1.5);
  for (int i = 0; i < 2; ++i) h.observe(3.0);
  // p50: rank 5 of 10 -> 1 into the second bucket of 4: 1 + (5-4)/4 * 1.
  EXPECT_NEAR(h.quantile(0.5), 1.25, 1e-9);
  // p100 clamps to the last bound.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(Histogram({1.0}).quantile(0.5), 0.0);  // empty
}

TEST(HistogramQuantiles, OverflowClampsToLastBound) {
  Histogram h({1.0, 2.0});
  h.observe(100.0);
  h.observe(200.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(HistogramQuantiles, ExportedInSnapshotAndRegistryJson) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test.latency", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_GT(snaps[0].p50, 0.0);
  EXPECT_GE(snaps[0].p99, snaps[0].p50);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // The export must stay strict JSON.
  EXPECT_TRUE(json_parse(json).has_value());
}

// End to end: reporter writes a stream -> tail reader -> aggregator. This is
// exactly the bdlfi_dash pipeline.
TEST(FlightRecorder, ReporterStreamRoundTripsThroughAggregator) {
  const std::string path = test_path("roundtrip.jsonl");
  {
    CampaignReporter::Options options;
    options.metrics_path = path;
    options.label = "rt";
    options.backend = "scalar";
    options.subject = "conv1";
    CampaignReporter reporter(options);
    reporter.set_campaign_id("00000000000000cc");
    reporter.begin(1e-3, 2, 50, 4);
    RoundEvent ev;
    ev.round = 1;
    ev.p = 1e-3;
    ev.cumulative_samples = 100;
    ev.mean_error = 2.0;
    ev.rhat = 1.3;
    ev.ess = 20;
    ev.evals_per_sec = 500;
    ev.round_seconds = 1.5;
    ev.outcome_masked = 90;
    ev.outcome_sdc = 2;
    ev.outcome_detected = 7;
    ev.outcome_corrected = 1;
    ev.rounds_budget = 4;
    reporter.round(ev);
    reporter.checkpoint_saved(1, "/tmp/rt.ckpt.json");
    reporter.end(true, 1);
  }
  JsonlTailReader reader(path);
  std::vector<JsonValue> events;
  reader.poll(&events);
  // begin + round + checkpoint + end + trailing metrics snapshot.
  ASSERT_EQ(events.size(), 5u);
  // Every event carries the envelope, with strictly increasing seq.
  std::uint64_t last_seq = 0;
  for (const auto& e : events) {
    const JsonValue* id = e.find("campaign_id");
    ASSERT_NE(id, nullptr);
    EXPECT_EQ(id->as_string(), "00000000000000cc");
    const JsonValue* seq = e.find("seq");
    ASSERT_NE(seq, nullptr);
    EXPECT_GT(seq->as_number(), static_cast<double>(last_seq));
    last_seq = static_cast<std::uint64_t>(seq->as_number());
  }
  // The round event carries the smoothed throughput + ETA fields.
  const JsonValue& round = events[1];
  EXPECT_EQ(round.find("event")->as_string(), "round");
  EXPECT_DOUBLE_EQ(round.find("evals_per_sec_ewma")->as_number(), 500.0);
  EXPECT_DOUBLE_EQ(round.find("rounds_budget")->as_number(), 4.0);
  // 3 budgeted rounds remain at 1.5s smoothed.
  EXPECT_NEAR(round.find("eta_s")->as_number(), 4.5, 1e-9);
  EXPECT_DOUBLE_EQ(round.find("outcome_masked")->as_number(), 90.0);

  EventAggregator agg;
  agg.ingest_all(events, path);
  ASSERT_EQ(agg.campaigns().size(), 1u);
  const CampaignState* c = agg.find("00000000000000cc");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->label, "rt");
  EXPECT_EQ(c->subject, "conv1");
  EXPECT_EQ(c->backend, "scalar");
  EXPECT_TRUE(c->converged);
  EXPECT_EQ(c->outcome_masked, 90u);
  ASSERT_EQ(c->checkpoints.size(), 1u);
  EXPECT_EQ(agg.seq_gaps(), 0u);
  std::filesystem::remove(path);
}

TEST(FlightRecorder, AutoDerivedCampaignIdsAreDistinctHex) {
  const std::string p1 = test_path("auto1.jsonl");
  const std::string p2 = test_path("auto2.jsonl");
  std::string id1, id2;
  {
    CampaignReporter::Options options;
    options.metrics_path = p1;
    options.label = "same";
    CampaignReporter r1(options);
    r1.begin(1e-3, 2, 10);
    id1 = r1.campaign_id();
    options.metrics_path = p2;
    CampaignReporter r2(options);
    r2.metrics_event();
    id2 = r2.campaign_id();
  }
  EXPECT_EQ(id1.size(), 16u);
  EXPECT_EQ(id2.size(), 16u);
  for (const char ch : id1) {
    EXPECT_TRUE((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')) << id1;
  }
  std::filesystem::remove(p1);
  std::filesystem::remove(p2);
}

}  // namespace
}  // namespace bdlfi::obs

namespace bdlfi::bench {
namespace {

obs::JsonValue parse(const std::string& text) {
  auto doc = obs::json_parse(text);
  EXPECT_TRUE(doc.has_value()) << text;
  return doc.has_value() ? *doc : obs::JsonValue{};
}

TEST(BenchHistory, ExtractsHeadlineMetricsPerBench) {
  std::string error;
  const auto kernels = entry_from_bench_doc(
      parse(R"({"config":{"backend":"avx2","avx2_supported":true,
          "smoke":false},"gemm":[{"n":256,"scalar_gflops":5.0}],
          "summary":{"speedup_n256":3.2}})"),
      "kernels", &error);
  ASSERT_TRUE(kernels.has_value()) << error;
  EXPECT_EQ(kernels->metric, "speedup_n256");
  EXPECT_DOUBLE_EQ(kernels->value, 3.2);
  EXPECT_TRUE(kernels->higher_is_better);
  EXPECT_EQ(kernels->backend, "avx2");
  EXPECT_EQ(kernels->fingerprint.size(), 16u);

  // Scalar-only machine: falls back to absolute throughput.
  const auto scalar = entry_from_bench_doc(
      parse(R"({"config":{"backend":"scalar","avx2_supported":false,
          "smoke":true},"gemm":[{"n":64,"scalar_gflops":2.0},
          {"n":256,"scalar_gflops":5.0}],"summary":{"speedup_n256":0.0}})"),
      "kernels", &error);
  ASSERT_TRUE(scalar.has_value()) << error;
  EXPECT_EQ(scalar->metric, "scalar_gflops");
  EXPECT_DOUBLE_EQ(scalar->value, 5.0);
  EXPECT_TRUE(scalar->smoke);

  const auto abft = entry_from_bench_doc(
      parse(R"({"config":{"backend":"scalar","smoke":false},
          "summary":{"detect_overhead_pct":12.0}})"),
      "abft", &error);
  ASSERT_TRUE(abft.has_value()) << error;
  EXPECT_EQ(abft->metric, "detect_overhead_pct");
  EXPECT_FALSE(abft->higher_is_better);

  const auto mask = entry_from_bench_doc(
      parse(R"({"config":{"backend":"scalar","smoke":false},
          "multi_mask":{"summary":{"overall_speedup":4.5}}})"),
      "mask_eval", &error);
  ASSERT_TRUE(mask.has_value()) << error;
  EXPECT_DOUBLE_EQ(mask->value, 4.5);

  EXPECT_FALSE(
      entry_from_bench_doc(parse(R"({"summary":{}})"), "abft", &error)
          .has_value());
}

TEST(BenchHistory, FingerprintTracksConfigChanges) {
  const auto a = parse(R"({"width":0.125,"image_size":16,"smoke":true})");
  const auto b = parse(R"({"width":0.125,"image_size":32,"smoke":true})");
  const auto a2 = parse(R"({"image_size":16,"smoke":true,"width":0.125})");
  EXPECT_NE(config_fingerprint(a), config_fingerprint(b));
  // Key order does not matter: objects serialize sorted.
  EXPECT_EQ(config_fingerprint(a), config_fingerprint(a2));
}

TEST(BenchHistory, RegressionGateFlagsSlowdownsBothDirections) {
  HistoryEntry base;
  base.bench = "mask_eval";
  base.fingerprint = "00000000000000aa";
  base.metric = "overall_speedup";
  base.value = 4.0;
  base.higher_is_better = true;

  HistoryEntry fresh = base;
  fresh.value = 2.0;  // injected 2x slowdown
  auto check = check_regression({base}, fresh, 0.35);
  EXPECT_TRUE(check.has_baseline);
  EXPECT_TRUE(check.regression);
  EXPECT_NEAR(check.worse_frac, 0.5, 1e-9);

  fresh.value = 3.8;  // within noise
  check = check_regression({base}, fresh, 0.35);
  EXPECT_FALSE(check.regression);

  fresh.value = 6.0;  // an improvement never trips the gate
  check = check_regression({base}, fresh, 0.35);
  EXPECT_FALSE(check.regression);
  EXPECT_DOUBLE_EQ(check.worse_frac, 0.0);

  // Lower-is-better metric (overhead pct): higher value = regression.
  HistoryEntry lo = base;
  lo.bench = "abft";
  lo.metric = "detect_overhead_pct";
  lo.value = 10.0;
  lo.higher_is_better = false;
  HistoryEntry worse = lo;
  worse.value = 20.0;
  check = check_regression({lo}, worse, 0.35);
  EXPECT_TRUE(check.regression);

  // A different fingerprint is a different population: no baseline.
  HistoryEntry other = fresh;
  other.fingerprint = "00000000000000bb";
  check = check_regression({base}, other, 0.35);
  EXPECT_FALSE(check.has_baseline);
  EXPECT_FALSE(check.regression);
}

TEST(BenchHistory, BestPriorWinsOverLaterWorseEntries) {
  HistoryEntry fast, slow;
  fast.bench = slow.bench = "kernels";
  fast.fingerprint = slow.fingerprint = "00000000000000aa";
  fast.higher_is_better = slow.higher_is_better = true;
  fast.value = 4.0;
  slow.value = 2.5;  // a recorded bad flight must not lower the bar
  HistoryEntry fresh = fast;
  fresh.value = 2.4;
  const auto check = check_regression({fast, slow}, fresh, 0.35);
  EXPECT_DOUBLE_EQ(check.best, 4.0);
  EXPECT_TRUE(check.regression);
}

TEST(BenchHistory, AppendLoadRoundTripSkipsTornTail) {
  const std::string path =
      ::testing::TempDir() + "bdlfi_stream_history.jsonl";
  std::filesystem::remove(path);
  HistoryEntry e;
  e.bench = "abft";
  e.backend = "scalar";
  e.fingerprint = "00000000000000aa";
  e.metric = "detect_overhead_pct";
  e.value = 12.5;
  e.higher_is_better = false;
  e.smoke = true;
  e.ts_ms = 42;
  ASSERT_TRUE(append_history(path, e));
  ASSERT_TRUE(append_history(path, e));
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"bench\":\"abft\",\"torn";  // killed writer
  }
  std::size_t skipped = 0;
  const auto loaded = load_history(path, &skipped);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(skipped, 1u);
  EXPECT_EQ(loaded[0].bench, "abft");
  EXPECT_DOUBLE_EQ(loaded[0].value, 12.5);
  EXPECT_FALSE(loaded[0].higher_is_better);
  EXPECT_TRUE(loaded[0].smoke);
  EXPECT_EQ(loaded[0].ts_ms, 42u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace bdlfi::bench
