// Property-based (parameterized) suites: numeric kernels against naive
// references across a shape grid, fault-model invariants across
// (profile × rate), and sampler stationarity across rates.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "fault/models.h"
#include "nn/builders.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace bdlfi {
namespace {

using tensor::Conv2dSpec;
using tensor::Shape;
using tensor::Tensor;

// --- GEMM over shapes and transposes -----------------------------------------

using GemmParam = std::tuple<int, int, int, bool, bool>;  // m, n, k, tA, tB

class GemmProperty : public ::testing::TestWithParam<GemmParam> {};

TEST_P(GemmProperty, MatchesNaiveReference) {
  const auto [m, n, k, trans_a, trans_b] = GetParam();
  util::Rng rng{static_cast<std::uint64_t>(m * 131 + n * 17 + k)};
  // Stored dims depend on transpose flags.
  Tensor a = Tensor::randn(trans_a ? Shape{k, m} : Shape{m, k}, rng);
  Tensor b = Tensor::randn(trans_b ? Shape{n, k} : Shape{k, n}, rng);
  Tensor c{Shape{m, n}};
  tensor::gemm(trans_a, trans_b, m, n, k, 1.0f, a.data(),
               trans_a ? m : k, b.data(), trans_b ? k : n, 0.0f, c.data(), n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = trans_a ? a.at(kk, i) : a.at(i, kk);
        const float bv = trans_b ? b.at(j, kk) : b.at(kk, j);
        acc += av * bv;
      }
      ASSERT_NEAR(c.at(i, j), acc, 1e-3f)
          << "m=" << m << " n=" << n << " k=" << k << " tA=" << trans_a
          << " tB=" << trans_b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, GemmProperty,
    ::testing::Combine(::testing::Values(1, 3, 17, 64),
                       ::testing::Values(1, 5, 33),
                       ::testing::Values(1, 7, 40),
                       ::testing::Bool(), ::testing::Bool()));

// --- Conv2d over configurations ------------------------------------------------

using ConvParam = std::tuple<int, int, int, int, int>;  // C, O, kernel, stride, H

class ConvProperty : public ::testing::TestWithParam<ConvParam> {};

TEST_P(ConvProperty, ForwardMatchesNaive) {
  const auto [c, o, kernel, stride, h] = GetParam();
  util::Rng rng{static_cast<std::uint64_t>(c * 7 + o * 11 + kernel + h)};
  Tensor input = Tensor::randn(Shape{2, c, h, h}, rng);
  Tensor weight = Tensor::randn(Shape{o, c, kernel, kernel}, rng);
  Conv2dSpec spec;
  spec.kernel_h = spec.kernel_w = kernel;
  spec.stride = stride;
  spec.set_pad(kernel / 2);
  const Tensor fast = tensor::conv2d_forward(input, weight, {}, spec);

  const std::int64_t oh = spec.out_h(h), ow = spec.out_w(h);
  for (std::int64_t s = 0; s < 2; ++s) {
    for (std::int64_t oc = 0; oc < o; ++oc) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (std::int64_t ic = 0; ic < c; ++ic) {
            for (std::int64_t ky = 0; ky < kernel; ++ky) {
              for (std::int64_t kx = 0; kx < kernel; ++kx) {
                const std::int64_t iy = oy * stride - spec.pad_h + ky;
                const std::int64_t ix = ox * stride - spec.pad_w + kx;
                if (iy < 0 || iy >= h || ix < 0 || ix >= h) continue;
                acc += input.at(s, ic, iy, ix) * weight.at(oc, ic, ky, kx);
              }
            }
          }
          ASSERT_NEAR(fast.at(s, oc, oy, ox), acc, 1e-3f);
        }
      }
    }
  }
}

TEST_P(ConvProperty, BackwardInputGradientSpotCheck) {
  const auto [c, o, kernel, stride, h] = GetParam();
  if (h > 9) GTEST_SKIP() << "large case covered by forward check";
  util::Rng rng{static_cast<std::uint64_t>(c + o + kernel + stride + h)};
  Tensor input = Tensor::randn(Shape{1, c, h, h}, rng);
  Tensor weight = Tensor::randn(Shape{o, c, kernel, kernel}, rng);
  Conv2dSpec spec;
  spec.kernel_h = spec.kernel_w = kernel;
  spec.stride = stride;
  spec.set_pad(kernel / 2);

  Tensor out = tensor::conv2d_forward(input, weight, {}, spec);
  Tensor ones = Tensor::full(out.shape(), 1.0f);
  Tensor gi, gw, gb;
  tensor::conv2d_backward(input, weight, ones, spec, gi, gw, gb);

  auto loss = [&](const Tensor& x) {
    Tensor y = tensor::conv2d_forward(x, weight, {}, spec);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) acc += y[i];
    return acc;
  };
  const float eps = 1e-2f;
  const std::int64_t probe = input.numel() / 2;
  Tensor xp = input, xm = input;
  xp[probe] += eps;
  xm[probe] -= eps;
  EXPECT_NEAR(gi[probe], (loss(xp) - loss(xm)) / (2.0 * eps), 5e-2);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, ConvProperty,
    ::testing::Combine(::testing::Values(1, 3), ::testing::Values(1, 4),
                       ::testing::Values(1, 3, 5), ::testing::Values(1, 2),
                       ::testing::Values(6, 9)));

// --- Fault sampling invariants across (profile, p) ----------------------------

struct ProfileCase {
  const char* name;
  fault::AvfProfile (*make)();
};

using FaultParam = std::tuple<int, double>;  // profile index, p

class FaultSamplingProperty : public ::testing::TestWithParam<FaultParam> {
 protected:
  static const ProfileCase kProfiles[4];
};

const ProfileCase FaultSamplingProperty::kProfiles[4] = {
    {"uniform", [] { return fault::AvfProfile::uniform(); }},
    {"exponent_weighted",
     [] { return fault::AvfProfile::exponent_weighted(4.0); }},
    {"mantissa_only", [] { return fault::AvfProfile::mantissa_only(); }},
    {"sign_exponent_only",
     [] { return fault::AvfProfile::sign_exponent_only(); }},
};

TEST_P(FaultSamplingProperty, FlipRateMatchesExpectation) {
  const auto [profile_idx, p] = GetParam();
  const fault::AvfProfile profile = kProfiles[profile_idx].make();
  util::Rng init{1};
  nn::Network net = nn::make_mlp({8, 16, 4}, init);
  fault::InjectionSpace space(net);
  util::Rng rng{static_cast<std::uint64_t>(profile_idx * 1000 +
                                           static_cast<int>(1.0 / p))};
  const int trials = 300;
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(space.sample_mask(profile, p, rng).num_flips());
  }
  const double expected = profile.expected_flips_per_word(p) *
                          static_cast<double>(space.total_elements());
  const double observed = total / trials;
  // 300 trials of a Poisson-ish count: allow 20% + absolute slack.
  EXPECT_NEAR(observed, expected, 0.2 * expected + 0.5)
      << kProfiles[profile_idx].name << " p=" << p;
}

TEST_P(FaultSamplingProperty, ApplyRevertRestoresBitExactly) {
  const auto [profile_idx, p] = GetParam();
  const fault::AvfProfile profile = kProfiles[profile_idx].make();
  util::Rng init{2};
  nn::Network net = nn::make_mlp({8, 16, 4}, init);
  fault::InjectionSpace space(net);
  std::vector<std::uint32_t> golden;
  for (const auto& e : space.entries()) {
    for (std::int64_t i = 0; i < e.value->numel(); ++i) {
      golden.push_back(fault::float_to_bits((*e.value)[i]));
    }
  }
  util::Rng rng{static_cast<std::uint64_t>(profile_idx + 7)};
  for (int t = 0; t < 10; ++t) {
    const fault::FaultMask mask = space.sample_mask(profile, p, rng);
    space.apply(mask);
    space.apply(mask);
  }
  std::size_t k = 0;
  for (const auto& e : space.entries()) {
    for (std::int64_t i = 0; i < e.value->numel(); ++i, ++k) {
      ASSERT_EQ(fault::float_to_bits((*e.value)[i]), golden[k]);
    }
  }
}

TEST_P(FaultSamplingProperty, LogPriorToggleAlgebra) {
  const auto [profile_idx, p] = GetParam();
  const fault::AvfProfile profile = kProfiles[profile_idx].make();
  util::Rng init{3};
  nn::Network net = nn::make_mlp({8, 16, 4}, init);
  fault::InjectionSpace space(net);
  util::Rng rng{static_cast<std::uint64_t>(profile_idx * 31 + 5)};
  fault::FaultMask mask = space.sample_mask(profile, p, rng);
  const double base = space.log_prior(mask, profile, p);
  if (!std::isfinite(base)) GTEST_SKIP() << "degenerate profile/mask";
  // Toggling any sampled-bit out and back in must round-trip the prior.
  if (mask.empty()) GTEST_SKIP() << "empty mask at tiny p";
  const std::int64_t bit = mask.bits().front();
  const double delta_out = space.log_prior_toggle_delta(bit, profile, p);
  fault::FaultMask without = mask;
  without.toggle(bit);
  EXPECT_NEAR(space.log_prior(without, profile, p), base - delta_out, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    ProfileRateGrid, FaultSamplingProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1e-4, 1e-3, 1e-2)));

// --- Architecture round-trips across builder configurations -------------------

class MlpShapeProperty
    : public ::testing::TestWithParam<std::vector<std::int64_t>> {};

TEST_P(MlpShapeProperty, CloneAndParamEnumerationConsistent) {
  util::Rng rng{4};
  nn::Network net = nn::make_mlp(GetParam(), rng);
  nn::Network copy = net.clone();
  const auto a = net.params();
  const auto b = copy.params();
  ASSERT_EQ(a.size(), b.size());
  std::int64_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].role, b[i].role);
    EXPECT_EQ(tensor::Tensor::max_abs_diff(*a[i].value, *b[i].value), 0.0f);
    total += a[i].value->numel();
  }
  EXPECT_EQ(total, net.num_params());

  Tensor x{Shape{3, GetParam().front()}};
  EXPECT_EQ(net.forward(x).shape(), Shape({3, GetParam().back()}));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MlpShapeProperty,
    ::testing::Values(std::vector<std::int64_t>{2, 4},
                      std::vector<std::int64_t>{2, 16, 2},
                      std::vector<std::int64_t>{5, 8, 8, 3},
                      std::vector<std::int64_t>{10, 32, 16, 8, 4}));

class ResnetWidthProperty : public ::testing::TestWithParam<double> {};

TEST_P(ResnetWidthProperty, ForwardShapeAndSpaceConsistency) {
  util::Rng rng{5};
  nn::ResNetConfig config;
  config.width_multiplier = GetParam();
  config.num_classes = 7;
  nn::Network net = nn::make_resnet18(config, rng);
  Tensor x{Shape{1, 3, 16, 16}};
  EXPECT_EQ(net.forward(x).shape(), Shape({1, 7}));
  fault::InjectionSpace space(net);
  EXPECT_EQ(space.total_elements(), net.num_params());
}

INSTANTIATE_TEST_SUITE_P(Widths, ResnetWidthProperty,
                         ::testing::Values(0.0625, 0.125, 0.25));

}  // namespace
}  // namespace bdlfi
