// Importance-sampled FI: unbiasedness against plain Monte Carlo, variance
// reduction in the rare-error regime, weight-ESS diagnostics.
#include "inject/importance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/toy2d.h"
#include "inject/random_fi.h"
#include "nn/builders.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace bdlfi::inject {
namespace {

class ImportanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng{1};
    data_ = new data::Dataset(data::make_two_moons(250, 0.08, rng));
    util::Rng init{2};
    net_ = new nn::Network(nn::make_mlp({2, 16, 2}, init));
    train::TrainConfig config;
    config.epochs = 30;
    config.lr = 0.05;
    config.seed = 3;
    train::fit(*net_, *data_, *data_, config);
    bfn_ = new bayes::BayesianFaultNetwork(
        *net_, bayes::TargetSpec::all_parameters(),
        fault::AvfProfile::uniform(), data_->inputs, data_->labels);
  }
  static void TearDownTestSuite() {
    delete bfn_;
    delete net_;
    delete data_;
  }
  static nn::Network* net_;
  static data::Dataset* data_;
  static bayes::BayesianFaultNetwork* bfn_;
};

nn::Network* ImportanceTest::net_ = nullptr;
data::Dataset* ImportanceTest::data_ = nullptr;
bayes::BayesianFaultNetwork* ImportanceTest::bfn_ = nullptr;

TEST_F(ImportanceTest, BetaOneReducesToPlainMonteCarlo) {
  // With beta = 1 all weights are equal, so the IS estimate is the sample
  // mean and the weight ESS equals the sample count.
  ImportanceFiConfig config;
  config.beta = 1.0;
  config.injections = 200;
  config.seed = 4;
  const auto result = run_importance_fi(*bfn_, 1e-3, config);
  EXPECT_NEAR(result.weight_ess, 200.0, 1e-6);
}

TEST_F(ImportanceTest, AgreesWithPlainMcUnderMildTilt) {
  // IS is built for the rare-error regime; a *mild* tilt (expected flips
  // under q still O(1)) must agree with plain MC. Aggressive tilts at
  // moderate p degenerate the weights — covered by WeightEssWarns below.
  const double p = 1e-4;
  ImportanceFiConfig is_config;
  is_config.beta = 3.0;
  is_config.injections = 2000;
  is_config.seed = 5;
  const auto is_result = run_importance_fi(*bfn_, p, is_config);
  EXPECT_GT(is_result.weight_ess, 50.0);  // tilt is healthy

  RandomFiConfig mc_config;
  mc_config.injections = 4000;
  mc_config.seed = 6;
  const auto mc_result = run_random_fi(*bfn_, p, mc_config);

  EXPECT_NEAR(is_result.mean_error, mc_result.mean_error,
              3.0 * mc_result.ci95_halfwidth + 2.0);
}

TEST_F(ImportanceTest, HitRateBoostedByTilt) {
  const double p = 1e-5;  // rare-error regime
  ImportanceFiConfig plain;
  plain.beta = 1.0;
  plain.injections = 300;
  plain.seed = 7;
  ImportanceFiConfig tilted = plain;
  tilted.beta = 100.0;
  const auto base = run_importance_fi(*bfn_, p, plain);
  const auto boosted = run_importance_fi(*bfn_, p, tilted);
  EXPECT_GT(boosted.hit_rate, base.hit_rate + 0.05);
}

TEST_F(ImportanceTest, RareErrorEstimateCloserToReference) {
  // At p = 3e-5 plain MC with a small budget usually sees only a handful of
  // non-benign masks; the tilted estimator should land closer to a
  // large-budget reference on average. Compare absolute errors across seeds.
  const double p = 3e-5;
  RandomFiConfig ref_config;
  ref_config.injections = 6000;
  ref_config.seed = 8;
  const double reference = run_random_fi(*bfn_, p, ref_config).mean_error;

  double is_abs = 0.0, mc_abs = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    ImportanceFiConfig is_config;
    is_config.beta = 30.0;
    is_config.injections = 200;
    is_config.seed = 100 + seed;
    is_abs += std::abs(run_importance_fi(*bfn_, p, is_config).mean_error -
                       reference);
    RandomFiConfig mc_config;
    mc_config.injections = 200;
    mc_config.seed = 200 + seed;
    mc_abs +=
        std::abs(run_random_fi(*bfn_, p, mc_config).mean_error - reference);
  }
  EXPECT_LE(is_abs, mc_abs + 0.5);
}

TEST_F(ImportanceTest, WeightEssWarnsOnAggressiveTilt) {
  const double p = 1e-5;
  ImportanceFiConfig mild;
  mild.beta = 5.0;
  mild.injections = 400;
  mild.seed = 9;
  ImportanceFiConfig extreme = mild;
  extreme.beta = 3000.0;
  const auto a = run_importance_fi(*bfn_, p, mild);
  const auto b = run_importance_fi(*bfn_, p, extreme);
  EXPECT_LT(b.weight_ess, a.weight_ess);
}

TEST_F(ImportanceTest, DeterministicForSeed) {
  ImportanceFiConfig config;
  config.beta = 10.0;
  config.injections = 100;
  config.seed = 10;
  const auto a = run_importance_fi(*bfn_, 1e-4, config);
  const auto b = run_importance_fi(*bfn_, 1e-4, config);
  EXPECT_DOUBLE_EQ(a.mean_error, b.mean_error);
  EXPECT_DOUBLE_EQ(a.weight_ess, b.weight_ess);
}

TEST_F(ImportanceTest, RejectsInvalidConfig) {
  ImportanceFiConfig config;
  config.beta = 0.5;
  EXPECT_DEATH(run_importance_fi(*bfn_, 1e-3, config), "beta");
  config.beta = 1e6;
  EXPECT_DEATH(run_importance_fi(*bfn_, 1e-3, config), "below 1");
}

}  // namespace
}  // namespace bdlfi::inject
