// Activation-fault campaign: hook-based in-flight corruption, taxonomy
// accounting, layer coverage, and golden-state isolation.
#include "inject/activation.h"

#include <gtest/gtest.h>

#include "data/toy2d.h"
#include "nn/builders.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace bdlfi::inject {
namespace {

class ActivationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng{1};
    data_ = new data::Dataset(data::make_two_moons(200, 0.08, rng));
    util::Rng init{2};
    net_ = new nn::Network(nn::make_mlp({2, 16, 2}, init));
    train::TrainConfig config;
    config.epochs = 25;
    config.lr = 0.05;
    config.seed = 3;
    train::fit(*net_, *data_, *data_, config);
  }
  static void TearDownTestSuite() {
    delete net_;
    delete data_;
  }
  static nn::Network* net_;
  static data::Dataset* data_;
};

nn::Network* ActivationTest::net_ = nullptr;
data::Dataset* ActivationTest::data_ = nullptr;

TEST_F(ActivationTest, CoversInputAndEveryLayer) {
  ActivationCampaignConfig config;
  config.injections = 5;
  config.p = 1e-4;
  config.seed = 4;
  const auto points =
      run_activation_campaign(*net_, data_->inputs, data_->labels, config);
  // (input) + 3 layers (fc1, relu1, fc2).
  ASSERT_EQ(points.size(), 1u + net_->num_layers());
  EXPECT_EQ(points[0].layer_index, -1);
  EXPECT_EQ(points[0].layer_kind, "input");
  EXPECT_EQ(points[1].layer_name, "fc1");
  for (const auto& pt : points) {
    EXPECT_GT(pt.activation_numel, 0);
    EXPECT_GE(pt.mean_error, 0.0);
    EXPECT_LE(pt.mean_error, 100.0);
  }
}

TEST_F(ActivationTest, ExcludeInputDropsPseudoLayer) {
  ActivationCampaignConfig config;
  config.injections = 3;
  config.include_input = false;
  const auto points =
      run_activation_campaign(*net_, data_->inputs, data_->labels, config);
  ASSERT_EQ(points.size(), net_->num_layers());
  EXPECT_EQ(points[0].layer_index, 0);
}

TEST_F(ActivationTest, HighRateCausesDamageLowRateDoesNot) {
  ActivationCampaignConfig gentle;
  gentle.injections = 20;
  gentle.p = 1e-7;
  gentle.seed = 5;
  ActivationCampaignConfig harsh = gentle;
  harsh.p = 5e-2;
  const auto low =
      run_activation_campaign(*net_, data_->inputs, data_->labels, gentle);
  const auto high =
      run_activation_campaign(*net_, data_->inputs, data_->labels, harsh);
  double low_dev = 0.0, high_dev = 0.0;
  for (const auto& pt : low) low_dev += pt.mean_deviation;
  for (const auto& pt : high) high_dev += pt.mean_deviation;
  EXPECT_GT(high_dev, low_dev + 10.0);
}

TEST_F(ActivationTest, GoldenNetworkUntouched) {
  const auto before = net_->predict(data_->inputs);
  ActivationCampaignConfig config;
  config.injections = 10;
  config.p = 1e-2;
  run_activation_campaign(*net_, data_->inputs, data_->labels, config);
  EXPECT_EQ(net_->predict(data_->inputs), before);
}

TEST_F(ActivationTest, DeterministicForSeed) {
  ActivationCampaignConfig config;
  config.injections = 10;
  config.p = 1e-3;
  config.seed = 6;
  const auto a =
      run_activation_campaign(*net_, data_->inputs, data_->labels, config);
  const auto b =
      run_activation_campaign(*net_, data_->inputs, data_->labels, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].mean_error, b[i].mean_error);
    EXPECT_DOUBLE_EQ(a[i].mean_flips, b[i].mean_flips);
  }
}

TEST_F(ActivationTest, FlipCountTracksActivationSize) {
  ActivationCampaignConfig config;
  config.injections = 30;
  config.p = 1e-3;
  config.seed = 7;
  const auto points =
      run_activation_campaign(*net_, data_->inputs, data_->labels, config);
  for (const auto& pt : points) {
    const double expected =
        config.p * 32.0 * static_cast<double>(pt.activation_numel);
    EXPECT_NEAR(pt.mean_flips, expected, 0.35 * expected + 2.0)
        << pt.layer_name;
  }
}

}  // namespace
}  // namespace bdlfi::inject
