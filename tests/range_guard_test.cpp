// Range guards: calibration, clamping/NaN-squashing semantics, transparency
// on clean data, and end-to-end SDC reduction under weight faults.
#include "nn/range_guard.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "bayes/fault_network.h"
#include "data/toy2d.h"
#include "inject/random_fi.h"
#include "nn/builders.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace bdlfi::nn {
namespace {

TEST(RangeGuard, UncalibratedIsTransparent) {
  RangeGuard guard;
  Tensor x{Shape{3}, {-5.0f, 0.0f, 1e30f}};
  Tensor y = guard.forward(x, false);
  EXPECT_EQ(Tensor::max_abs_diff(x, y), 0.0f);
  EXPECT_EQ(guard.corrections(), 0u);
}

TEST(RangeGuard, CalibrationRecordsRange) {
  RangeGuard guard(0.0);
  guard.set_calibrating(true);
  Tensor x{Shape{4}, {-2.0f, 1.0f, 3.0f, 0.5f}};
  guard.forward(x, false);
  guard.set_calibrating(false);
  EXPECT_TRUE(guard.is_calibrated());
  EXPECT_FLOAT_EQ(guard.lo(), -2.0f);
  EXPECT_FLOAT_EQ(guard.hi(), 3.0f);
}

TEST(RangeGuard, ClampsOutOfRangeAfterCalibration) {
  RangeGuard guard(0.0);
  guard.set_calibrating(true);
  Tensor calib{Shape{2}, {0.0f, 1.0f}};
  guard.forward(calib, false);
  guard.set_calibrating(false);

  Tensor x{Shape{4}, {-10.0f, 0.5f, 100.0f, 1.0f}};
  Tensor y = guard.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.5f);
  EXPECT_FLOAT_EQ(y[2], 1.0f);
  EXPECT_FLOAT_EQ(y[3], 1.0f);
  EXPECT_EQ(guard.corrections(), 2u);
}

TEST(RangeGuard, NanSquashedToMidpoint) {
  RangeGuard guard(0.0);
  guard.set_calibrating(true);
  Tensor calib{Shape{2}, {0.0f, 2.0f}};
  guard.forward(calib, false);
  guard.set_calibrating(false);

  Tensor x{Shape{1}, {std::nanf("")}};
  Tensor y = guard.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
}

TEST(RangeGuard, MarginWidensRange) {
  RangeGuard guard(0.5);
  guard.set_calibrating(true);
  Tensor calib{Shape{2}, {0.0f, 2.0f}};
  guard.forward(calib, false);
  guard.set_calibrating(false);

  Tensor x{Shape{2}, {-0.9f, 2.9f}};  // within ±50% widening
  Tensor y = guard.forward(x, false);
  EXPECT_EQ(guard.corrections(), 0u);
  EXPECT_EQ(Tensor::max_abs_diff(x, y), 0.0f);
}

TEST(RangeGuard, CalibrationIgnoresNonFinite) {
  RangeGuard guard(0.0);
  guard.set_calibrating(true);
  Tensor calib{Shape{3},
               {1.0f, std::numeric_limits<float>::infinity(), 2.0f}};
  guard.forward(calib, false);
  EXPECT_FLOAT_EQ(guard.hi(), 2.0f);
}

TEST(RangeGuard, AllNonFiniteCalibrationLeavesGuardTransparent) {
  // A calibration batch with no finite value cannot define a range: the guard
  // must stay uncalibrated (and thus transparent), never freeze the empty
  // (+inf, -inf) range and clamp everything to garbage.
  RangeGuard guard(0.0);
  guard.set_calibrating(true);
  Tensor calib{Shape{3},
               {std::nanf(""), std::numeric_limits<float>::infinity(),
                -std::numeric_limits<float>::infinity()}};
  guard.forward(calib, false);
  guard.set_calibrating(false);
  EXPECT_FALSE(guard.is_calibrated());
  Tensor x{Shape{2}, {-1e30f, 1e30f}};
  Tensor y = guard.forward(x, false);
  EXPECT_EQ(Tensor::max_abs_diff(x, y), 0.0f);
  EXPECT_EQ(guard.corrections(), 0u);
}

TEST(RangeGuardDeath, EmptyCalibrationBatchFailsLoudly) {
  util::Rng init{2};
  Network net = make_mlp({2, 8, 2}, init);
  Tensor empty{Shape{0, 2}};
  EXPECT_DEATH((void)add_range_guards(net, empty, 0.1),
               "calibration input batch is empty");
}

class GuardedNetworkTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng{1};
    data_ = new data::Dataset(data::make_two_moons(300, 0.08, rng));
    util::Rng init{2};
    net_ = new Network(make_mlp({2, 16, 32, 2}, init));
    train::TrainConfig config;
    config.epochs = 35;
    config.lr = 0.05;
    config.seed = 3;
    train::fit(*net_, *data_, *data_, config);
  }
  static void TearDownTestSuite() {
    delete net_;
    delete data_;
  }
  static Network* net_;
  static data::Dataset* data_;
};

Network* GuardedNetworkTest::net_ = nullptr;
data::Dataset* GuardedNetworkTest::data_ = nullptr;

TEST_F(GuardedNetworkTest, GuardsPreserveCleanPredictions) {
  Network guarded = add_range_guards(*net_, data_->inputs, 0.1);
  EXPECT_EQ(guarded.num_layers(), 2 * net_->num_layers());
  EXPECT_EQ(guarded.predict(data_->inputs), net_->predict(data_->inputs));
  EXPECT_EQ(total_guard_corrections(guarded), 0u);
}

TEST_F(GuardedNetworkTest, GuardsCloneWithCalibration) {
  Network guarded = add_range_guards(*net_, data_->inputs, 0.1);
  Network copy = guarded.clone();
  EXPECT_EQ(copy.predict(data_->inputs), guarded.predict(data_->inputs));
  // The cloned guards must be calibrated too.
  for (std::size_t i = 0; i < copy.num_layers(); ++i) {
    if (auto* guard = dynamic_cast<RangeGuard*>(&copy.layer(i))) {
      EXPECT_TRUE(guard->is_calibrated());
    }
  }
}

TEST_F(GuardedNetworkTest, CloneStartsCounterAtZeroAndTalliesIndependently) {
  // clone() deliberately does not copy corrections_: each chain replica is a
  // fresh deployment of the same calibrated guard, and campaign totals sum
  // per-replica tallies. Identical replicas over identical inputs must
  // produce identical (deterministic) counts.
  Network guarded = add_range_guards(*net_, data_->inputs, 0.0);
  // Out-of-range probe: push inputs far outside the calibrated activation
  // ranges so the first guard fires deterministically.
  Tensor probe = data_->inputs;
  for (std::int64_t i = 0; i < probe.numel(); ++i) probe[i] *= 1e6f;
  (void)guarded.forward(probe, false);
  const std::size_t original = total_guard_corrections(guarded);
  ASSERT_GT(original, 0u);

  Network replica_a = guarded.clone();
  Network replica_b = guarded.clone();
  EXPECT_EQ(total_guard_corrections(replica_a), 0u);
  (void)replica_a.forward(probe, false);
  (void)replica_b.forward(probe, false);
  EXPECT_EQ(total_guard_corrections(replica_a), original);
  EXPECT_EQ(total_guard_corrections(replica_b), original);
  // The original's tally is untouched by its clones.
  EXPECT_EQ(total_guard_corrections(guarded), original);
}

TEST_F(GuardedNetworkTest, GuardsReduceFaultDeviation) {
  const double p = 3e-3;
  bayes::BayesianFaultNetwork plain(
      *net_, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), data_->inputs, data_->labels);

  Network guarded = add_range_guards(*net_, data_->inputs, 0.1);
  // Target only the original layers' parameters (guards have none anyway).
  bayes::BayesianFaultNetwork protected_net(
      guarded, bayes::TargetSpec::all_parameters(),
      fault::AvfProfile::uniform(), data_->inputs, data_->labels);

  inject::RandomFiConfig fi;
  fi.injections = 400;
  fi.seed = 4;
  const auto base = inject::run_random_fi(plain, p, fi);
  const auto hard = inject::run_random_fi(protected_net, p, fi);
  EXPECT_LT(hard.mean_deviation, base.mean_deviation);
  // Guards convert would-be NaN outputs into in-range values: detected↓.
  EXPECT_LE(hard.mean_detected, base.mean_detected);
}

}  // namespace
}  // namespace bdlfi::nn
