// Batched multi-mask evaluation must be indistinguishable from sequential
// evaluation: for every target kind, batch size, and kernel backend, the
// outcomes returned by BayesianFaultNetwork::evaluate_masks are required to
// be bit-identical (field by field) to evaluate_mask run on each mask in
// order, and the truncated-replay accounting must match per mask. The
// kernel-level contracts underneath — gemm_variants vs gemm_rows and
// conv2d_forward_multi vs conv2d_forward — are checked bitwise too.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "bayes/fault_network.h"
#include "bayes/multi_mask.h"
#include "bayes/targets.h"
#include "data/cifar_like.h"
#include "data/toy2d.h"
#include "inject/random_fi.h"
#include "mcmc/gibbs.h"
#include "mcmc/mh.h"
#include "nn/builders.h"
#include "nn/range_guard.h"
#include "tensor/backend/backend.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace bdlfi::bayes {
namespace {

using tensor::Tensor;

void expect_outcomes_equal(const MaskOutcome& seq, const MaskOutcome& bat) {
  EXPECT_DOUBLE_EQ(seq.classification_error, bat.classification_error);
  EXPECT_DOUBLE_EQ(seq.deviation, bat.deviation);
  EXPECT_DOUBLE_EQ(seq.detected, bat.detected);
  EXPECT_DOUBLE_EQ(seq.sdc, bat.sdc);
  EXPECT_EQ(seq.flipped_bits, bat.flipped_bits);
  EXPECT_EQ(seq.outcome, bat.outcome);
  EXPECT_EQ(seq.abft_detected_rows, bat.abft_detected_rows);
  EXPECT_EQ(seq.abft_corrected_rows, bat.abft_corrected_rows);
  EXPECT_EQ(seq.abft_faults_injected, bat.abft_faults_injected);
  EXPECT_EQ(seq.guard_corrections, bat.guard_corrections);
}

void expect_stats_equal(const EvalStats& seq, const EvalStats& bat) {
  EXPECT_EQ(seq.full_evals, bat.full_evals);
  EXPECT_EQ(seq.truncated_evals, bat.truncated_evals);
  EXPECT_EQ(seq.layers_run, bat.layers_run);
  EXPECT_EQ(seq.layers_total, bat.layers_total);
}

struct Subject {
  nn::Network net;
  Tensor inputs;
  std::vector<std::int64_t> labels;
};

Subject make_mlp_subject() {
  util::Rng data_rng{301};
  data::Dataset data = data::make_two_moons(32, 0.08, data_rng);
  util::Rng init{302};
  return {nn::make_mlp({2, 8, 8, 2}, init), data.inputs, data.labels};
}

Subject make_resnet_subject() {
  data::CifarLikeConfig config;
  config.samples_per_class = 2;
  config.num_classes = 4;
  config.image_size = 8;
  util::Rng data_rng{303};
  data::Dataset data = data::make_cifar_like(config, data_rng);
  nn::ResNetConfig net_config;
  net_config.width_multiplier = 0.0625;
  net_config.num_classes = 4;
  util::Rng init{304};
  return {nn::make_resnet18(net_config, init), data.inputs, data.labels};
}

TargetSpec everything_spec() {
  TargetSpec spec = TargetSpec::all_parameters();
  spec.include_buffers = true;
  spec.include_input = true;
  spec.include_activations = true;
  return spec;
}

// Evaluates the same mask list sequentially and batched (fresh instances, so
// the replay accounting starts at zero on both sides) and requires exact
// agreement, across a spread of batch sizes.
void check_parity(const Subject& subject, const TargetSpec& spec, double p,
                  std::uint64_t seed, std::size_t num_masks = 12) {
  for (const std::size_t mask_batch : {std::size_t{1}, std::size_t{2},
                                       std::size_t{7}, std::size_t{32}}) {
    SCOPED_TRACE("mask_batch=" + std::to_string(mask_batch));
    BayesianFaultNetwork seq(subject.net, spec, fault::AvfProfile::uniform(),
                             subject.inputs, subject.labels);
    BayesianFaultNetwork bat(subject.net, spec, fault::AvfProfile::uniform(),
                             subject.inputs, subject.labels);

    util::Rng rng{seed};
    std::vector<FaultMask> masks;
    masks.push_back(FaultMask{});  // empty mask rides along
    while (masks.size() < num_masks) {
      masks.push_back(seq.sample_prior_mask(p, rng));
    }

    std::vector<MaskOutcome> expected;
    expected.reserve(masks.size());
    for (const auto& mask : masks) expected.push_back(seq.evaluate_mask(mask));
    const std::vector<MaskOutcome> got = bat.evaluate_masks(masks, mask_batch);

    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      SCOPED_TRACE("mask " + std::to_string(i));
      expect_outcomes_equal(expected[i], got[i]);
    }
    expect_stats_equal(seq.eval_stats(), bat.eval_stats());
  }
}

TEST(MultiMaskParity, MlpEverything) {
  check_parity(make_mlp_subject(), everything_spec(), 0.004, 401);
}

TEST(MultiMaskParity, ResnetEverything) {
  // Mixed site kinds → mixed replay-begin groups, including input (begin 0)
  // and late activations.
  check_parity(make_resnet_subject(), everything_spec(), 2e-5, 402);
}

TEST(MultiMaskParity, ResnetWeightsOnly) {
  check_parity(make_resnet_subject(), TargetSpec::weights_only(), 1e-4, 403);
}

TEST(MultiMaskParity, ResnetNoCacheFullForwardGroups) {
  // With the cache disabled every mask lands in the begin-0 group.
  TargetSpec spec = TargetSpec::all_parameters();
  const Subject subject = make_resnet_subject();
  for (const std::size_t mask_batch : {std::size_t{1}, std::size_t{4}}) {
    EvalCacheConfig no_cache;
    no_cache.enable_truncated_replay = false;
    BayesianFaultNetwork seq(subject.net, spec, fault::AvfProfile::uniform(),
                             subject.inputs, subject.labels, no_cache);
    BayesianFaultNetwork bat(subject.net, spec, fault::AvfProfile::uniform(),
                             subject.inputs, subject.labels, no_cache);
    util::Rng rng{404};
    std::vector<FaultMask> masks;
    for (int i = 0; i < 6; ++i) masks.push_back(seq.sample_prior_mask(1e-4, rng));
    std::vector<MaskOutcome> expected;
    for (const auto& m : masks) expected.push_back(seq.evaluate_mask(m));
    const auto got = bat.evaluate_masks(masks, mask_batch);
    for (std::size_t i = 0; i < masks.size(); ++i) {
      expect_outcomes_equal(expected[i], got[i]);
    }
    expect_stats_equal(seq.eval_stats(), bat.eval_stats());
    EXPECT_EQ(bat.eval_stats().truncated_evals, 0u);
  }
}

TEST(MultiMaskParity, Avx2BackendBitExact) {
  if (!tensor::backend::avx2_supported()) GTEST_SKIP() << "no AVX2";
  ASSERT_TRUE(tensor::backend::set_active("avx2"));
  // Subjects are built under the active backend so the golden capture and
  // every evaluation share one kernel table.
  check_parity(make_resnet_subject(), everything_spec(), 2e-5, 405);
  ASSERT_TRUE(tensor::backend::set_active("scalar"));
}

TEST(MultiMaskFallback, ComputeFaultMasksTakeSequentialPath) {
  const Subject subject = make_mlp_subject();
  const TargetSpec spec = TargetSpec::compute_only();
  BayesianFaultNetwork seq(subject.net, spec, fault::AvfProfile::uniform(),
                           subject.inputs, subject.labels);
  BayesianFaultNetwork bat(subject.net, spec, fault::AvfProfile::uniform(),
                           subject.inputs, subject.labels);
  util::Rng rng{406};
  std::vector<FaultMask> masks;
  for (int i = 0; i < 5; ++i) masks.push_back(seq.sample_prior_mask(0.002, rng));
  std::vector<MaskOutcome> expected;
  for (const auto& m : masks) expected.push_back(seq.evaluate_mask(m));
  const auto got = bat.evaluate_masks(masks, 4);
  for (std::size_t i = 0; i < masks.size(); ++i) {
    expect_outcomes_equal(expected[i], got[i]);
  }
  expect_stats_equal(seq.eval_stats(), bat.eval_stats());
}

TEST(MultiMaskFallback, AbftCheckingForcesSequential) {
  Subject subject = make_mlp_subject();
  tensor::abft::Config abft;
  abft.mode = tensor::abft::Mode::kDetect;
  subject.net.set_abft(abft);
  BayesianFaultNetwork seq(subject.net, TargetSpec::all_parameters(),
                           fault::AvfProfile::uniform(), subject.inputs,
                           subject.labels);
  BayesianFaultNetwork bat(subject.net, TargetSpec::all_parameters(),
                           fault::AvfProfile::uniform(), subject.inputs,
                           subject.labels);
  EXPECT_FALSE(MultiMaskEvaluator(bat).batchable());
  util::Rng rng{407};
  std::vector<FaultMask> masks;
  for (int i = 0; i < 4; ++i) masks.push_back(seq.sample_prior_mask(0.004, rng));
  std::vector<MaskOutcome> expected;
  for (const auto& m : masks) expected.push_back(seq.evaluate_mask(m));
  const auto got = bat.evaluate_masks(masks, 4);
  for (std::size_t i = 0; i < masks.size(); ++i) {
    expect_outcomes_equal(expected[i], got[i]);
  }
}

TEST(MultiMaskFallback, RangeGuardsForceSequential) {
  Subject subject = make_mlp_subject();
  subject.net.add("guard", std::make_unique<nn::RangeGuard>());
  BayesianFaultNetwork seq(subject.net, TargetSpec::all_parameters(),
                           fault::AvfProfile::uniform(), subject.inputs,
                           subject.labels);
  BayesianFaultNetwork bat(subject.net, TargetSpec::all_parameters(),
                           fault::AvfProfile::uniform(), subject.inputs,
                           subject.labels);
  EXPECT_FALSE(MultiMaskEvaluator(bat).batchable());
  util::Rng rng{408};
  std::vector<FaultMask> masks;
  for (int i = 0; i < 4; ++i) masks.push_back(seq.sample_prior_mask(0.004, rng));
  std::vector<MaskOutcome> expected;
  for (const auto& m : masks) expected.push_back(seq.evaluate_mask(m));
  const auto got = bat.evaluate_masks(masks, 4);
  for (std::size_t i = 0; i < masks.size(); ++i) {
    expect_outcomes_equal(expected[i], got[i]);
  }
}

// --- Kernel contracts --------------------------------------------------------

void check_gemm_variants(const tensor::backend::KernelBackend& be) {
  const std::int64_t m = 7, n = 13, k = 9;
  constexpr std::size_t kVariants = 3;
  util::Rng rng{409};
  std::vector<std::vector<float>> a(kVariants);
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (auto& x : b) x = static_cast<float>(rng.normal());
  std::vector<const float*> a_ptrs(kVariants);
  for (std::size_t v = 0; v < kVariants; ++v) {
    a[v].resize(static_cast<std::size_t>(m * k));
    for (std::size_t i = 0; i < a[v].size(); ++i) {
      // Sprinkle exact zeros: the scalar kernel's zero-skip must behave
      // identically through both entry points.
      a[v][i] = (i % 5 == v) ? 0.0f : static_cast<float>(rng.normal());
    }
    a_ptrs[v] = a[v].data();
  }
  std::vector<std::vector<float>> got(kVariants), want(kVariants);
  std::vector<float*> c_ptrs(kVariants);
  for (std::size_t v = 0; v < kVariants; ++v) {
    got[v].assign(static_cast<std::size_t>(m * n), -1.0f);
    want[v].assign(static_cast<std::size_t>(m * n), -2.0f);
    c_ptrs[v] = got[v].data();
  }
  be.gemm_variants(m, n, k, a_ptrs.data(), kVariants, k, b.data(), n,
                   c_ptrs.data(), n);
  for (std::size_t v = 0; v < kVariants; ++v) {
    be.gemm_rows(false, false, 0, m, n, k, 1.0f, a[v].data(), k, b.data(), n,
                 0.0f, want[v].data(), n);
    EXPECT_EQ(std::memcmp(got[v].data(), want[v].data(),
                          want[v].size() * sizeof(float)),
              0)
        << be.name << " variant " << v;
  }
}

TEST(MultiMaskKernels, GemmVariantsMatchesGemmRowsScalar) {
  check_gemm_variants(tensor::backend::scalar_backend());
}

TEST(MultiMaskKernels, GemmVariantsMatchesGemmRowsAvx2) {
  if (!tensor::backend::avx2_supported()) GTEST_SKIP() << "no AVX2";
  check_gemm_variants(tensor::backend::avx2_backend());
}

void check_conv_multi() {
  constexpr std::size_t kVariants = 3;
  const std::int64_t n = 2, c = 2, h = 6, w = 5, o = 4;
  tensor::Conv2dSpec spec;  // 3x3, stride 1, pad 1
  util::Rng rng{410};
  const Tensor input =
      Tensor::randn(tensor::Shape{n, c, h, w}, rng, 0.0f, 1.0f);
  std::vector<Tensor> weights, biases;
  std::vector<const float*> w_ptrs, b_ptrs;
  for (std::size_t v = 0; v < kVariants; ++v) {
    weights.push_back(Tensor::randn(
        tensor::Shape{o, c, spec.kernel_h, spec.kernel_w}, rng, 0.0f, 1.0f));
    // Variant 1 runs bias-free: nullptr must mean "skip", exactly like the
    // sequential empty-bias path.
    biases.push_back(v == 1 ? Tensor{}
                            : Tensor::randn(tensor::Shape{o}, rng, 0.0f, 1.0f));
  }
  for (std::size_t v = 0; v < kVariants; ++v) {
    w_ptrs.push_back(weights[v].data());
    b_ptrs.push_back(biases[v].empty() ? nullptr : biases[v].data());
  }
  const std::int64_t oh = spec.out_h(h), ow = spec.out_w(w);
  const std::int64_t out_per = n * o * oh * ow;

  // Shared input: every variant reads the same [n, ...] block.
  Tensor shared_out{
      tensor::Shape{static_cast<std::int64_t>(kVariants) * n, o, oh, ow}};
  tensor::conv2d_forward_multi(input.data(), /*shared_input=*/true, kVariants,
                               n, c, h, w, w_ptrs.data(), b_ptrs.data(), o,
                               spec, shared_out.data());
  for (std::size_t v = 0; v < kVariants; ++v) {
    const Tensor want =
        tensor::conv2d_forward(input, weights[v], biases[v], spec);
    EXPECT_EQ(std::memcmp(shared_out.data() +
                              static_cast<std::int64_t>(v) * out_per,
                          want.data(),
                          static_cast<std::size_t>(out_per) * sizeof(float)),
              0)
        << "shared, variant " << v;
  }

  // Diverged input: variant v owns samples [v*n, (v+1)*n).
  Tensor stacked{tensor::Shape{static_cast<std::int64_t>(kVariants) * n, c, h,
                               w}};
  std::vector<Tensor> blocks;
  for (std::size_t v = 0; v < kVariants; ++v) {
    Tensor block = Tensor::randn(tensor::Shape{n, c, h, w}, rng, 0.0f, 1.0f);
    std::memcpy(stacked.data() + static_cast<std::int64_t>(v) * block.numel(),
                block.data(),
                static_cast<std::size_t>(block.numel()) * sizeof(float));
    blocks.push_back(std::move(block));
  }
  Tensor diverged_out{
      tensor::Shape{static_cast<std::int64_t>(kVariants) * n, o, oh, ow}};
  tensor::conv2d_forward_multi(stacked.data(), /*shared_input=*/false,
                               kVariants, n, c, h, w, w_ptrs.data(),
                               b_ptrs.data(), o, spec, diverged_out.data());
  for (std::size_t v = 0; v < kVariants; ++v) {
    const Tensor want =
        tensor::conv2d_forward(blocks[v], weights[v], biases[v], spec);
    EXPECT_EQ(std::memcmp(diverged_out.data() +
                              static_cast<std::int64_t>(v) * out_per,
                          want.data(),
                          static_cast<std::size_t>(out_per) * sizeof(float)),
              0)
        << "diverged, variant " << v;
  }
}

TEST(MultiMaskKernels, ConvMultiMatchesSequentialScalar) {
  ASSERT_TRUE(tensor::backend::set_active("scalar"));
  check_conv_multi();
}

TEST(MultiMaskKernels, ConvMultiMatchesSequentialAvx2) {
  if (!tensor::backend::avx2_supported()) GTEST_SKIP() << "no AVX2";
  ASSERT_TRUE(tensor::backend::set_active("avx2"));
  check_conv_multi();
  ASSERT_TRUE(tensor::backend::set_active("scalar"));
}

// --- Sampler / injector equivalence ------------------------------------------
//
// Deferring retained-sample evaluations into batched flushes must not change
// anything observable: same samples, same tallies, same RNG stream, same
// final chain state, same replay accounting.

void expect_chains_equal(const mcmc::ChainResult& a,
                         const mcmc::ChainResult& b) {
  EXPECT_EQ(a.error_samples, b.error_samples);
  EXPECT_EQ(a.deviation_samples, b.deviation_samples);
  EXPECT_EQ(a.flips_samples, b.flips_samples);
  EXPECT_DOUBLE_EQ(a.acceptance_rate, b.acceptance_rate);
  EXPECT_EQ(a.network_evals, b.network_evals);
  EXPECT_EQ(a.outcome_masked, b.outcome_masked);
  EXPECT_EQ(a.outcome_sdc, b.outcome_sdc);
  EXPECT_EQ(a.outcome_detected, b.outcome_detected);
  EXPECT_EQ(a.outcome_corrected, b.outcome_corrected);
  EXPECT_EQ(a.full_evals, b.full_evals);
  EXPECT_EQ(a.truncated_evals, b.truncated_evals);
  EXPECT_EQ(a.layers_run, b.layers_run);
  EXPECT_EQ(a.layers_total, b.layers_total);
  EXPECT_EQ(a.rng_state, b.rng_state);
  EXPECT_TRUE(
      FaultMask::symmetric_difference(a.final_mask, b.final_mask).empty());
}

TEST(MultiMaskEquivalence, MhBatchedMatchesSequential) {
  const Subject subject = make_mlp_subject();
  const TargetSpec spec = everything_spec();
  const double p = 0.004;
  mcmc::ChainResult results[2];
  const std::size_t batches[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    BayesianFaultNetwork bfn(subject.net, spec, fault::AvfProfile::uniform(),
                             subject.inputs, subject.labels);
    PriorTarget target(bfn, p);
    mcmc::MhConfig config;
    config.samples = 22;
    config.burn_in = 5;
    config.thin = 2;
    config.seed = 77;
    config.mask_batch = batches[i];
    results[i] = mcmc::MhSampler(bfn, target, p, config).run();
  }
  EXPECT_EQ(results[0].error_samples.size(), 22u);
  expect_chains_equal(results[0], results[1]);
}

TEST(MultiMaskEquivalence, GibbsBatchedMatchesSequential) {
  const Subject subject = make_mlp_subject();
  const TargetSpec spec = everything_spec();
  const double p = 0.004;
  mcmc::ChainResult results[2];
  const std::size_t batches[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    BayesianFaultNetwork bfn(subject.net, spec, fault::AvfProfile::uniform(),
                             subject.inputs, subject.labels);
    PriorTarget target(bfn, p);
    mcmc::GibbsConfig config;
    config.samples = 15;
    config.burn_in = 2;
    config.coordinates_per_sweep = 16;
    config.seed = 78;
    config.mask_batch = batches[i];
    results[i] = mcmc::GibbsSampler(bfn, target, p, config).run();
  }
  EXPECT_EQ(results[0].error_samples.size(), 15u);
  expect_chains_equal(results[0], results[1]);
}

TEST(MultiMaskEquivalence, RandomFiBatchedMatchesSequential) {
  const Subject subject = make_mlp_subject();
  BayesianFaultNetwork bfn(subject.net, everything_spec(),
                           fault::AvfProfile::uniform(), subject.inputs,
                           subject.labels);
  inject::RandomFiResult results[2];
  const std::size_t batches[2] = {1, 5};
  for (int i = 0; i < 2; ++i) {
    inject::RandomFiConfig config;
    config.injections = 23;
    config.workers = 2;  // fixed so both runs use the same per-worker seeds
    config.seed = 79;
    config.mask_batch = batches[i];
    results[i] = inject::run_random_fi(bfn, 0.004, config);
  }
  EXPECT_EQ(results[0].injections, 23u);
  EXPECT_EQ(results[0].error_samples, results[1].error_samples);
  EXPECT_DOUBLE_EQ(results[0].mean_error, results[1].mean_error);
  EXPECT_DOUBLE_EQ(results[0].mean_deviation, results[1].mean_deviation);
  EXPECT_DOUBLE_EQ(results[0].mean_flips, results[1].mean_flips);
  EXPECT_EQ(results[0].outcome_masked, results[1].outcome_masked);
  EXPECT_EQ(results[0].outcome_sdc, results[1].outcome_sdc);
  EXPECT_EQ(results[0].outcome_detected, results[1].outcome_detected);
  EXPECT_EQ(results[0].outcome_corrected, results[1].outcome_corrected);
}

}  // namespace
}  // namespace bdlfi::bayes
