// Greedy critical-bit search: monotone trajectory, golden-state restoration,
// protection interaction, determinism.
#include "bayes/critical.h"

#include <gtest/gtest.h>

#include "bayes/sensitivity.h"
#include "data/toy2d.h"
#include "fault/bits.h"
#include "nn/builders.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace bdlfi::bayes {
namespace {

class CriticalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng{1};
    data_ = new data::Dataset(data::make_two_moons(200, 0.08, rng));
    util::Rng init{2};
    net_ = new nn::Network(nn::make_mlp({2, 12, 2}, init));
    train::TrainConfig config;
    config.epochs = 25;
    config.lr = 0.05;
    config.seed = 3;
    train::fit(*net_, *data_, *data_, config);
  }
  static void TearDownTestSuite() {
    delete net_;
    delete data_;
  }
  static BayesianFaultNetwork make_bfn() {
    return BayesianFaultNetwork(*net_, TargetSpec::all_parameters(),
                                fault::AvfProfile::uniform(), data_->inputs,
                                data_->labels);
  }
  static nn::Network* net_;
  static data::Dataset* data_;
};

nn::Network* CriticalTest::net_ = nullptr;
data::Dataset* CriticalTest::data_ = nullptr;

TEST_F(CriticalTest, FindsBreakingMaskWithFewFlips) {
  auto bfn = make_bfn();
  CriticalBitConfig config;
  config.target_deviation = 50.0;
  config.candidates_per_round = 128;
  config.max_flips = 20;
  config.seed = 4;
  const auto result = find_critical_bits(bfn, config);
  EXPECT_TRUE(result.reached_target);
  EXPECT_GE(result.achieved_deviation, 50.0);
  // Tiny MLPs break with a handful of well-placed sign/exponent flips.
  EXPECT_LE(result.mask.num_flips(), 10u);
}

TEST_F(CriticalTest, TrajectoryIsNonDecreasing) {
  auto bfn = make_bfn();
  CriticalBitConfig config;
  config.target_deviation = 40.0;
  config.seed = 5;
  const auto result = find_critical_bits(bfn, config);
  for (std::size_t i = 1; i < result.deviation_trajectory.size(); ++i) {
    EXPECT_GE(result.deviation_trajectory[i],
              result.deviation_trajectory[i - 1] - 1e-9);
  }
}

TEST_F(CriticalTest, NetworkRestoredAfterSearch) {
  auto bfn = make_bfn();
  const double golden = bfn.golden_error();
  CriticalBitConfig config;
  config.seed = 6;
  find_critical_bits(bfn, config);
  EXPECT_DOUBLE_EQ(bfn.evaluate_mask(fault::FaultMask{}).classification_error,
                   golden);
}

TEST_F(CriticalTest, HighImpactFilterSelectsSignExponent) {
  auto bfn = make_bfn();
  CriticalBitConfig config;
  config.high_impact_bits_only = true;
  config.seed = 7;
  const auto result = find_critical_bits(bfn, config);
  for (std::int64_t flat : result.mask.bits()) {
    EXPECT_FALSE(
        fault::is_mantissa_bit(static_cast<int>(flat % 32)));
  }
}

TEST_F(CriticalTest, ProtectionRaisesFlipsNeeded) {
  auto plain = make_bfn();
  auto hardened = make_bfn();
  const auto report = compute_sensitivity(
      *net_, TargetSpec::all_parameters(), data_->inputs, data_->labels,
      SensitivityScore::kWeightOnly);
  hardened.mutable_space().protect_elements(report.top_fraction(0.3));

  CriticalBitConfig config;
  config.target_deviation = 50.0;
  config.candidates_per_round = 128;
  config.max_flips = 30;
  config.seed = 8;
  const auto base = find_critical_bits(plain, config);
  const auto prot = find_critical_bits(hardened, config);
  // Protected sites are excluded from candidates; reaching the target takes
  // at least as many flips (or fails within the cap).
  if (base.reached_target && prot.reached_target) {
    EXPECT_GE(prot.mask.num_flips(), base.mask.num_flips());
  }
  for (std::int64_t flat : prot.mask.bits()) {
    EXPECT_FALSE(hardened.mutable_space().is_protected(flat / 32));
  }
}

TEST_F(CriticalTest, PropertyMonotoneAndRestoredOverRandomSeeds) {
  // Property test: for any search seed, (a) the greedy deviation trajectory
  // never decreases — each accepted flip must improve or hold the objective —
  // and (b) the search leaves the network bit-exactly golden, so the empty
  // mask still evaluates to zero deviation afterwards.
  util::Rng seed_gen{0xC217ul};
  for (int trial = 0; trial < 5; ++trial) {
    const std::uint64_t seed = seed_gen();
    auto bfn = make_bfn();
    const double golden = bfn.golden_error();
    CriticalBitConfig config;
    config.target_deviation = 30.0;
    config.candidates_per_round = 64;
    config.max_flips = 12;
    config.seed = seed;
    const auto result = find_critical_bits(bfn, config);
    ASSERT_FALSE(result.deviation_trajectory.empty())
        << "seed " << seed << " produced an empty trajectory";
    for (std::size_t i = 1; i < result.deviation_trajectory.size(); ++i) {
      EXPECT_GE(result.deviation_trajectory[i],
                result.deviation_trajectory[i - 1] - 1e-9)
          << "seed " << seed << " step " << i;
    }
    const auto clean = bfn.evaluate_mask(fault::FaultMask{});
    EXPECT_DOUBLE_EQ(clean.classification_error, golden) << "seed " << seed;
    EXPECT_EQ(clean.deviation, 0.0) << "seed " << seed;
  }
}

TEST_F(CriticalTest, DeterministicForSeed) {
  auto a = make_bfn();
  auto b = make_bfn();
  CriticalBitConfig config;
  config.seed = 9;
  const auto ra = find_critical_bits(a, config);
  const auto rb = find_critical_bits(b, config);
  EXPECT_EQ(ra.mask, rb.mask);
  EXPECT_DOUBLE_EQ(ra.achieved_deviation, rb.achieved_deviation);
}

}  // namespace
}  // namespace bdlfi::bayes
