// Training: loss correctness, optimizer dynamics, schedules, end-to-end
// learning on separable data (the "golden run" of the paper's step 1).
#include "train/trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/toy2d.h"
#include "nn/builders.h"
#include "train/loss.h"
#include "train/optimizer.h"
#include "util/rng.h"

namespace bdlfi::train {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(CrossEntropy, UniformLogitsLossIsLogC) {
  Tensor logits{Shape{2, 4}};
  std::vector<std::int64_t> labels{0, 3};
  const LossResult r = cross_entropy(logits, labels);
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-5);
}

TEST(CrossEntropy, PerfectPredictionNearZeroLoss) {
  Tensor logits{Shape{1, 3}, {100.0f, 0.0f, 0.0f}};
  std::vector<std::int64_t> labels{0};
  EXPECT_NEAR(cross_entropy(logits, labels).loss, 0.0, 1e-5);
}

TEST(CrossEntropy, GradientRowsSumToZero) {
  util::Rng rng{1};
  Tensor logits = Tensor::randn(Shape{6, 5}, rng);
  std::vector<std::int64_t> labels{0, 1, 2, 3, 4, 0};
  const LossResult r = cross_entropy(logits, labels);
  for (std::int64_t i = 0; i < 6; ++i) {
    float sum = 0.0f;
    for (std::int64_t c = 0; c < 5; ++c) sum += r.grad_logits.at(i, c);
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
}

TEST(CrossEntropy, GradientNumericalCheck) {
  util::Rng rng{2};
  Tensor logits = Tensor::randn(Shape{3, 4}, rng);
  std::vector<std::int64_t> labels{1, 0, 3};
  const LossResult r = cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::int64_t idx = 0; idx < logits.numel(); ++idx) {
    Tensor lp = logits, lm = logits;
    lp[idx] += eps;
    lm[idx] -= eps;
    const double numeric =
        (cross_entropy(lp, labels).loss - cross_entropy(lm, labels).loss) /
        (2.0 * eps);
    EXPECT_NEAR(r.grad_logits[idx], numeric, 1e-3);
  }
}

TEST(Sgd, MovesAgainstGradient) {
  tensor::Tensor w{tensor::Shape{2}, {1.0f, -1.0f}};
  tensor::Tensor g{tensor::Shape{2}, {0.5f, -0.5f}};
  std::vector<ParamRef> params{{"w", nn::ParamRole::kWeight, &w, &g}};
  Sgd opt(0.1, /*momentum=*/0.0);
  opt.step(params);
  EXPECT_FLOAT_EQ(w[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(w[1], -1.0f + 0.1f * 0.5f);
}

TEST(Sgd, MomentumAccumulates) {
  tensor::Tensor w{tensor::Shape{1}, {0.0f}};
  tensor::Tensor g{tensor::Shape{1}, {1.0f}};
  std::vector<ParamRef> params{{"w", nn::ParamRole::kWeight, &w, &g}};
  Sgd opt(1.0, /*momentum=*/0.5);
  opt.step(params);  // v=1, w=-1
  opt.step(params);  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(w[0], -2.5f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  tensor::Tensor w{tensor::Shape{1}, {10.0f}};
  tensor::Tensor g{tensor::Shape{1}, {0.0f}};
  std::vector<ParamRef> params{{"w", nn::ParamRole::kWeight, &w, &g}};
  Sgd opt(0.1, 0.0, /*weight_decay=*/0.1);
  opt.step(params);
  EXPECT_LT(w[0], 10.0f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize (w-3)^2 → w should approach 3.
  tensor::Tensor w{tensor::Shape{1}, {0.0f}};
  tensor::Tensor g{tensor::Shape{1}};
  std::vector<ParamRef> params{{"w", nn::ParamRole::kWeight, &w, &g}};
  Adam opt(0.1);
  for (int i = 0; i < 500; ++i) {
    g[0] = 2.0f * (w[0] - 3.0f);
    opt.step(params);
  }
  EXPECT_NEAR(w[0], 3.0f, 0.05f);
}

TEST(Schedules, CosineDecaysToFloor) {
  CosineLr schedule(0.01);
  EXPECT_NEAR(schedule.lr_at(0, 100, 1.0), 1.0, 1e-9);
  EXPECT_NEAR(schedule.lr_at(99, 100, 1.0), 0.01, 1e-6);
  EXPECT_GT(schedule.lr_at(25, 100, 1.0), schedule.lr_at(75, 100, 1.0));
}

TEST(Schedules, StepDecay) {
  StepLr schedule(10, 0.5);
  EXPECT_DOUBLE_EQ(schedule.lr_at(5, 100, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(schedule.lr_at(10, 100, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(schedule.lr_at(25, 100, 1.0), 0.25);
}

TEST(Trainer, LearnsTwoMoons) {
  util::Rng rng{3};
  data::Dataset all = data::make_two_moons(600, 0.08, rng);
  data::Split split = data::split_dataset(all, 0.8, rng);

  util::Rng init{4};
  nn::Network net = nn::make_mlp({2, 16, 32, 2}, init);
  TrainConfig config;
  config.epochs = 40;
  config.batch_size = 32;
  config.lr = 0.05;
  config.seed = 5;
  const TrainResult result = fit(net, split.train, split.test, config);
  EXPECT_GT(result.final_test_accuracy, 0.95);
  // Loss decreased substantially.
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss * 0.5);
}

TEST(Trainer, TargetAccuracyStopsEarly) {
  util::Rng rng{6};
  data::Dataset all = data::make_blobs(300, 3, 3.0, 0.3, rng);
  data::Split split = data::split_dataset(all, 0.8, rng);
  util::Rng init{7};
  nn::Network net = nn::make_mlp({2, 16, 3}, init);
  TrainConfig config;
  config.epochs = 100;
  config.lr = 0.05;
  config.target_accuracy = 0.9;  // blobs are easy; should stop long before 100
  const TrainResult result = fit(net, split.train, split.test, config);
  EXPECT_LT(result.history.size(), 100u);
  EXPECT_GE(result.final_test_accuracy, 0.9);
}

TEST(Trainer, EvaluateAccuracyMatchesNetworkAccuracy) {
  util::Rng rng{8};
  data::Dataset ds = data::make_blobs(100, 2, 3.0, 0.3, rng);
  util::Rng init{9};
  nn::Network net = nn::make_mlp({2, 8, 2}, init);
  const double a = evaluate_accuracy(net, ds, 16);
  const double b = net.accuracy(ds.inputs, ds.labels);
  EXPECT_NEAR(a, b, 1e-12);
}

}  // namespace
}  // namespace bdlfi::train
