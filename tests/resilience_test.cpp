// Crash-safe campaigns: checkpoint roundtrip fidelity, kill-and-resume
// bit-exactness, and the supervisor's retry/quarantine/graceful-degradation
// policy (NaN-poisoned targets, wall-clock timeouts, fingerprint-mismatch
// resume rejection).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <thread>

#include "bayes/targets.h"
#include "data/toy2d.h"
#include "mcmc/checkpoint.h"
#include "mcmc/runner.h"
#include "mcmc/supervisor.h"
#include "nn/builders.h"
#include "tensor/backend/backend.h"
#include "train/trainer.h"
#include "util/interrupt.h"
#include "util/rng.h"

namespace bdlfi::mcmc {
namespace {

// ---------------------------------------------------------------------------
// Shared trained subject (same pattern as inject_test).

class ResilienceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng{1};
    data_ = new data::Dataset(data::make_two_moons(200, 0.08, rng));
    util::Rng init{2};
    net_ = new nn::Network(nn::make_mlp({2, 16, 2}, init));
    train::TrainConfig config;
    config.epochs = 30;
    config.lr = 0.05;
    config.seed = 3;
    train::fit(*net_, *data_, *data_, config);
    bfn_ = new bayes::BayesianFaultNetwork(
        *net_, bayes::TargetSpec::all_parameters(),
        bayes::AvfProfile::uniform(), data_->inputs, data_->labels);
  }
  static void TearDownTestSuite() {
    delete bfn_;
    delete net_;
    delete data_;
  }
  void SetUp() override { util::set_interrupt_requested(false); }
  void TearDown() override { util::set_interrupt_requested(false); }

  static std::string fresh_dir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "bdlfi_resilience_" + name;
    std::filesystem::remove_all(dir);
    return dir;
  }

  static nn::Network* net_;
  static data::Dataset* data_;
  static bayes::BayesianFaultNetwork* bfn_;
};

nn::Network* ResilienceTest::net_ = nullptr;
data::Dataset* ResilienceTest::data_ = nullptr;
bayes::BayesianFaultNetwork* ResilienceTest::bfn_ = nullptr;

/// A target whose density is NaN everywhere: models a chain whose posterior
/// evaluation is poisoned (wedged numerics, corrupted replica).
class NanTarget : public bayes::MaskTarget {
 public:
  double log_density(const FaultMask&) override {
    return std::numeric_limits<double>::quiet_NaN();
  }
  std::optional<double> analytic_toggle_delta(const FaultMask&,
                                              std::int64_t) override {
    return std::nullopt;
  }
  bool requires_network_eval() const override { return false; }
};

/// A healthy prior target that burns wall-clock on every density evaluation,
/// to trip the cooperative watchdog.
class SlowTarget : public bayes::MaskTarget {
 public:
  SlowTarget(bayes::BayesianFaultNetwork& net, double p) : prior_(net, p) {}
  double log_density(const FaultMask& mask) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return prior_.log_density(mask);
  }
  std::optional<double> analytic_toggle_delta(const FaultMask&,
                                              std::int64_t) override {
    return std::nullopt;  // force every move through the slow path
  }
  bool requires_network_eval() const override { return false; }

 private:
  bayes::PriorTarget prior_;
};

RunnerConfig small_runner() {
  RunnerConfig config;
  config.num_chains = 2;
  config.mh.samples = 25;
  config.mh.burn_in = 10;
  config.mh.thin = 2;
  config.seed = 9;
  return config;
}

CompletenessCriterion never_converge(std::size_t max_rounds) {
  CompletenessCriterion criterion;
  criterion.rhat_threshold = 0.0;  // unattainable: run every round
  criterion.mean_rel_tol = 0.0;
  criterion.max_rounds = max_rounds;
  return criterion;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i])) {
      EXPECT_TRUE(std::isnan(b[i])) << "index " << i;
    } else {
      EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
          << "index " << i << ": " << a[i] << " vs " << b[i];
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint serialization.

TEST(Checkpoint, RoundtripPreservesEveryFieldBitExactly) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  CampaignCheckpoint ck;
  ck.fingerprint = 0xdeadbeefcafef00dULL;
  ck.backend = "avx2";
  ck.p = 1e-3;
  ck.rounds_completed = 3;
  ck.converged = true;
  ck.prev_mean = 12.345678901234567;
  ck.prev_evals = 4242;
  ck.trajectory = {{100, 5e-324, 1.0000000000000002, 37.5},
                   {200, -0.0, 1e308, nan}};

  ChainResult healthy;
  healthy.error_samples = {5e-324, -0.0, 1e308, 0.1, nan};
  healthy.deviation_samples = {1.0, 2.0, 3.0, 4.0, 5.0};
  healthy.flips_samples = {0.0, 1.0, 2.0, 3.0, 4.0};
  healthy.acceptance_rate = 0.12345678901234567;
  healthy.network_evals = 77;
  healthy.full_evals = 7;
  healthy.truncated_evals = 70;
  healthy.layers_run = 123;
  healthy.layers_total = 456;
  ChainResult sick;
  sick.error_samples = {nan};
  sick.deviation_samples = {nan};
  sick.flips_samples = {1.0};
  ck.chains = {healthy, sick};

  util::Rng rng{7};
  rng.normal();  // leave a cached Box–Muller variate in the engine
  for (int i = 0; i < 100; ++i) rng();
  ChainCursor cursor;
  cursor.valid = true;
  cursor.rng_state = rng.state_save();
  cursor.mask = FaultMask({1, 99, 163});
  ck.cursors = {cursor, ChainCursor{}};

  ChainHealth h0, h1;
  h0.chain = 0;
  h1.chain = 1;
  h1.status = ChainStatus::quarantined;
  h1.retries = 3;
  h1.last_failure = "nan_divergence";
  h1.quarantined_round = 2;
  ck.health = {h0, h1};

  const std::string path =
      ::testing::TempDir() + "bdlfi_ckpt_roundtrip/campaign.ckpt.json";
  std::filesystem::remove_all(::testing::TempDir() + "bdlfi_ckpt_roundtrip");
  ASSERT_TRUE(save_checkpoint(path, ck));

  std::string error;
  const auto back = load_checkpoint(path, &error);
  ASSERT_TRUE(back.has_value()) << error;

  EXPECT_EQ(back->fingerprint, ck.fingerprint);
  EXPECT_EQ(back->backend, "avx2");
  EXPECT_EQ(std::memcmp(&back->p, &ck.p, sizeof(double)), 0);
  EXPECT_EQ(back->rounds_completed, 3u);
  EXPECT_TRUE(back->converged);
  EXPECT_EQ(std::memcmp(&back->prev_mean, &ck.prev_mean, sizeof(double)), 0);
  EXPECT_EQ(back->prev_evals, 4242u);

  ASSERT_EQ(back->trajectory.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back->trajectory[i].cumulative_samples,
              ck.trajectory[i].cumulative_samples);
    expect_bitwise_equal(
        {back->trajectory[i].mean_error, back->trajectory[i].rhat,
         back->trajectory[i].ess},
        {ck.trajectory[i].mean_error, ck.trajectory[i].rhat,
         ck.trajectory[i].ess});
  }
  // The serialized -0.0 must come back with its sign.
  EXPECT_TRUE(std::signbit(back->trajectory[1].mean_error));

  ASSERT_EQ(back->chains.size(), 2u);
  expect_bitwise_equal(back->chains[0].error_samples, healthy.error_samples);
  expect_bitwise_equal(back->chains[0].deviation_samples,
                       healthy.deviation_samples);
  expect_bitwise_equal(back->chains[0].flips_samples, healthy.flips_samples);
  EXPECT_TRUE(std::signbit(back->chains[0].error_samples[1]));
  EXPECT_EQ(std::memcmp(&back->chains[0].acceptance_rate,
                        &healthy.acceptance_rate, sizeof(double)),
            0);
  EXPECT_EQ(back->chains[0].network_evals, 77u);
  EXPECT_EQ(back->chains[0].full_evals, 7u);
  EXPECT_EQ(back->chains[0].truncated_evals, 70u);
  EXPECT_EQ(back->chains[0].layers_run, 123u);
  EXPECT_EQ(back->chains[0].layers_total, 456u);
  EXPECT_TRUE(std::isnan(back->chains[1].error_samples[0]));

  ASSERT_EQ(back->cursors.size(), 2u);
  ASSERT_TRUE(back->cursors[0].valid);
  EXPECT_EQ(back->cursors[0].rng_state, cursor.rng_state);
  EXPECT_EQ(back->cursors[0].mask, cursor.mask);
  EXPECT_FALSE(back->cursors[1].valid);
  // The restored engine must continue the identical stream, cached normal
  // included.
  util::Rng restored{0};
  ASSERT_TRUE(restored.state_load(back->cursors[0].rng_state));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(restored(), rng());

  ASSERT_EQ(back->health.size(), 2u);
  EXPECT_EQ(back->health[0].status, ChainStatus::healthy);
  EXPECT_EQ(back->health[1].status, ChainStatus::quarantined);
  EXPECT_EQ(back->health[1].retries, 3u);
  EXPECT_EQ(back->health[1].last_failure, "nan_divergence");
  EXPECT_EQ(back->health[1].quarantined_round, 2u);
}

TEST(Checkpoint, LoadRejectsMissingAndMalformedFiles) {
  std::string error;
  EXPECT_FALSE(load_checkpoint("/nonexistent/campaign.ckpt.json", &error)
                   .has_value());
  EXPECT_FALSE(error.empty());

  const std::string dir = ::testing::TempDir() + "bdlfi_ckpt_malformed";
  std::filesystem::create_directories(dir);
  const auto write = [&](const std::string& name, const std::string& body) {
    const std::string path = dir + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return path;
  };
  EXPECT_FALSE(load_checkpoint(write("garbage.json", "{oops"), &error)
                   .has_value());
  EXPECT_FALSE(
      load_checkpoint(write("wrong_schema.json",
                            "{\"schema\":\"other\",\"version\":1}"),
                      &error)
          .has_value());
  EXPECT_FALSE(load_checkpoint(
                   write("wrong_version.json",
                         "{\"schema\":\"bdlfi_campaign_checkpoint\","
                         "\"version\":99}"),
                   &error)
                   .has_value());
  EXPECT_EQ(error, "unsupported checkpoint version");
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Supervisor policy.

TEST(Supervisor, InspectClassifiesFailures) {
  SupervisorConfig config;
  config.min_acceptance = 0.01;
  config.max_evals_per_round = 1000;
  ChainSupervisor sup(config, 1);

  ChainResult ok;
  ok.error_samples = {1.0, 2.0};
  ok.acceptance_rate = 0.4;
  EXPECT_EQ(sup.inspect(ok), "");

  ChainResult diverged = ok;
  diverged.diverged = true;
  EXPECT_EQ(sup.inspect(diverged), "nan_divergence");

  ChainResult nan_sample = ok;
  nan_sample.error_samples.push_back(
      std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(sup.inspect(nan_sample), "nan_divergence");

  ChainResult timed_out = ok;
  timed_out.timed_out = true;
  EXPECT_EQ(sup.inspect(timed_out), "timeout");

  ChainResult collapsed = ok;
  collapsed.acceptance_rate = 0.0;
  EXPECT_EQ(sup.inspect(collapsed), "acceptance_collapse");

  ChainResult blown = ok;
  blown.network_evals = 5000;
  EXPECT_EQ(sup.inspect(blown), "eval_budget");

  // Detectors with their knob unset stay disarmed.
  ChainSupervisor lax(SupervisorConfig{}, 1);
  EXPECT_EQ(lax.inspect(collapsed), "");
  EXPECT_EQ(lax.inspect(blown), "");
  EXPECT_EQ(lax.inspect(diverged), "nan_divergence");  // always armed
}

TEST(Supervisor, RetriesThenQuarantines) {
  SupervisorConfig config;
  config.max_retries = 2;
  ChainSupervisor sup(config, 3);
  EXPECT_EQ(sup.num_surviving(), 3u);

  EXPECT_TRUE(sup.record_failure(1, 0, "timeout", 0));   // retry allowed
  EXPECT_TRUE(sup.record_failure(1, 0, "timeout", 1));   // retry allowed
  EXPECT_FALSE(sup.record_failure(1, 0, "nan_divergence", 2));  // quarantine
  EXPECT_TRUE(sup.quarantined(1));
  EXPECT_EQ(sup.num_quarantined(), 1u);
  EXPECT_EQ(sup.num_surviving(), 2u);
  EXPECT_EQ(sup.health()[1].retries, 3u);
  EXPECT_EQ(sup.health()[1].last_failure, "nan_divergence");
  EXPECT_EQ(sup.health()[1].quarantined_round, 1u);
  EXPECT_FALSE(sup.quarantined(0));
  EXPECT_FALSE(sup.quarantined(2));
}

TEST(Supervisor, StatusStringsRoundtrip) {
  ChainStatus status = ChainStatus::quarantined;
  EXPECT_TRUE(chain_status_from_string("healthy", &status));
  EXPECT_EQ(status, ChainStatus::healthy);
  EXPECT_TRUE(chain_status_from_string(to_string(ChainStatus::quarantined),
                                       &status));
  EXPECT_EQ(status, ChainStatus::quarantined);
  EXPECT_FALSE(chain_status_from_string("zombie", &status));
}

// ---------------------------------------------------------------------------
// Graceful degradation.

TEST_F(ResilienceTest, NanChainIsQuarantinedAndSurvivorsPooled) {
  RunnerConfig config = small_runner();
  config.num_chains = 4;
  std::vector<obs::ChainHealthEvent> incidents;
  config.health_hook = [&incidents](const obs::ChainHealthEvent& e) {
    incidents.push_back(e);
  };
  const double p = 1e-3;
  ChainTargetFactory factory = [p](bayes::BayesianFaultNetwork& net,
                                   std::size_t chain)
      -> std::unique_ptr<bayes::MaskTarget> {
    if (chain == 0) return std::make_unique<NanTarget>();
    return std::make_unique<bayes::PriorTarget>(net, p);
  };

  const CampaignResult result = run_chains(*bfn_, factory, p, config);

  EXPECT_EQ(result.chains_quarantined, 1u);
  EXPECT_TRUE(result.degraded);
  EXPECT_FALSE(result.failed);  // 3 survivors: campaign is still sound
  ASSERT_EQ(result.health.size(), 4u);
  EXPECT_EQ(result.health[0].status, ChainStatus::quarantined);
  EXPECT_EQ(result.health[0].last_failure, "nan_divergence");
  // Default budget: attempt 0 + max_retries retries, all recorded.
  EXPECT_EQ(result.health[0].retries, 1u + config.supervisor.max_retries);
  for (std::size_t c = 1; c < 4; ++c) {
    EXPECT_EQ(result.health[c].status, ChainStatus::healthy);
  }
  // Pooled statistics come from the survivors and are finite.
  EXPECT_GT(result.total_samples, 0u);
  EXPECT_TRUE(std::isfinite(result.mean_error));
  EXPECT_TRUE(std::isfinite(result.diagnostics.rhat));
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].chain, 0u);
  EXPECT_EQ(incidents[0].status, "quarantined");
  EXPECT_EQ(incidents[0].reason, "nan_divergence");
}

TEST_F(ResilienceTest, FewerThanTwoSurvivorsFailsLoudlyWithoutAborting) {
  RunnerConfig config = small_runner();
  config.supervisor.max_retries = 0;  // quarantine on first failure
  ChainTargetFactory factory = [](bayes::BayesianFaultNetwork&, std::size_t)
      -> std::unique_ptr<bayes::MaskTarget> {
    return std::make_unique<NanTarget>();
  };

  const CampaignResult result = run_chains(*bfn_, factory, 1e-3, config);

  EXPECT_EQ(result.chains_quarantined, 2u);
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(result.failed);
  EXPECT_FALSE(result.fail_reason.empty());
  EXPECT_EQ(result.total_samples, 0u);
}

TEST_F(ResilienceTest, TimedOutChainIsQuarantined) {
  RunnerConfig config = small_runner();
  config.num_chains = 3;
  config.supervisor.round_timeout_ms = 10.0;
  config.supervisor.max_retries = 0;
  const double p = 1e-3;
  ChainTargetFactory factory = [p](bayes::BayesianFaultNetwork& net,
                                   std::size_t chain)
      -> std::unique_ptr<bayes::MaskTarget> {
    if (chain == 1) return std::make_unique<SlowTarget>(net, p);
    return std::make_unique<bayes::PriorTarget>(net, p);
  };

  const CampaignResult result = run_chains(*bfn_, factory, p, config);

  EXPECT_EQ(result.chains_quarantined, 1u);
  EXPECT_TRUE(result.degraded);
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.health[1].status, ChainStatus::quarantined);
  EXPECT_EQ(result.health[1].last_failure, "timeout");
  EXPECT_TRUE(std::isfinite(result.mean_error));
  EXPECT_GT(result.total_samples, 0u);
}

// ---------------------------------------------------------------------------
// Kill-and-resume.

TEST_F(ResilienceTest, ResumeAfterInterruptIsBitExact) {
  const RunnerConfig base = small_runner();
  const CompletenessCriterion criterion = never_converge(4);
  const double p = 1e-3;
  TargetFactory factory = [p](bayes::BayesianFaultNetwork& net) {
    return std::make_unique<bayes::PriorTarget>(net, p);
  };

  // Reference: the uninterrupted campaign.
  const CompletenessResult reference =
      run_until_complete(*bfn_, factory, p, base, criterion);
  ASSERT_EQ(reference.rounds, 4u);

  // Same campaign, checkpointed, "killed" after round 2 via the interrupt
  // flag — exactly what the SIGINT handler sets.
  const std::string dir = fresh_dir("resume");
  RunnerConfig interrupted = base;
  interrupted.checkpoint_dir = dir;
  interrupted.round_hook = [](const obs::RoundEvent& e) {
    if (e.round == 2) util::set_interrupt_requested(true);
  };
  const CompletenessResult partial =
      run_until_complete(*bfn_, factory, p, interrupted, criterion);
  EXPECT_TRUE(partial.interrupted);
  EXPECT_EQ(partial.rounds, 2u);
  ASSERT_TRUE(std::filesystem::exists(checkpoint_path(dir)));

  // Relaunch with --resume semantics.
  util::set_interrupt_requested(false);
  RunnerConfig resumed_config = base;
  resumed_config.checkpoint_dir = dir;
  resumed_config.resume = true;
  const CompletenessResult resumed =
      run_until_complete(*bfn_, factory, p, resumed_config, criterion);

  EXPECT_FALSE(resumed.interrupted);
  EXPECT_FALSE(resumed.resume_rejected);
  EXPECT_EQ(resumed.resumed_from_round, 2u);
  EXPECT_EQ(resumed.rounds, 4u);

  // Bit-exact: the resumed campaign is indistinguishable from the
  // uninterrupted one — trajectory, pooled diagnostics, and every per-chain
  // sample stream.
  ASSERT_EQ(resumed.trajectory.size(), reference.trajectory.size());
  for (std::size_t i = 0; i < reference.trajectory.size(); ++i) {
    EXPECT_EQ(resumed.trajectory[i].cumulative_samples,
              reference.trajectory[i].cumulative_samples);
    expect_bitwise_equal(
        {resumed.trajectory[i].mean_error, resumed.trajectory[i].rhat,
         resumed.trajectory[i].ess},
        {reference.trajectory[i].mean_error, reference.trajectory[i].rhat,
         reference.trajectory[i].ess});
  }
  const CampaignResult& a = resumed.final_result;
  const CampaignResult& b = reference.final_result;
  ASSERT_EQ(a.chains.size(), b.chains.size());
  for (std::size_t c = 0; c < a.chains.size(); ++c) {
    expect_bitwise_equal(a.chains[c].error_samples, b.chains[c].error_samples);
    expect_bitwise_equal(a.chains[c].deviation_samples,
                         b.chains[c].deviation_samples);
    expect_bitwise_equal(a.chains[c].flips_samples, b.chains[c].flips_samples);
    EXPECT_EQ(a.chains[c].network_evals, b.chains[c].network_evals);
  }
  expect_bitwise_equal({a.mean_error, a.diagnostics.rhat, a.diagnostics.ess},
                       {b.mean_error, b.diagnostics.rhat, b.diagnostics.ess});
  std::filesystem::remove_all(dir);
}

TEST_F(ResilienceTest, ResumeRejectsFingerprintMismatch) {
  const double p = 1e-3;
  TargetFactory factory = [p](bayes::BayesianFaultNetwork& net) {
    return std::make_unique<bayes::PriorTarget>(net, p);
  };
  const std::string dir = fresh_dir("mismatch");
  RunnerConfig config = small_runner();
  config.checkpoint_dir = dir;
  const CompletenessResult first =
      run_until_complete(*bfn_, factory, p, config, never_converge(2));
  ASSERT_EQ(first.rounds, 2u);
  ASSERT_TRUE(std::filesystem::exists(checkpoint_path(dir)));

  // Different seed → different fingerprint → rejected, nothing run.
  RunnerConfig other_seed = config;
  other_seed.resume = true;
  other_seed.seed = config.seed + 1;
  const CompletenessResult rejected =
      run_until_complete(*bfn_, factory, p, other_seed, never_converge(4));
  EXPECT_TRUE(rejected.resume_rejected);
  EXPECT_TRUE(rejected.final_result.failed);
  EXPECT_EQ(rejected.rounds, 0u);

  // Different flip probability → rejected too.
  RunnerConfig same = config;
  same.resume = true;
  const CompletenessResult wrong_p =
      run_until_complete(*bfn_, factory, 2e-3, same, never_converge(4));
  EXPECT_TRUE(wrong_p.resume_rejected);

  // Matching config extends the run past the original budget.
  const CompletenessResult extended =
      run_until_complete(*bfn_, factory, p, same, never_converge(3));
  EXPECT_FALSE(extended.resume_rejected);
  EXPECT_EQ(extended.resumed_from_round, 2u);
  EXPECT_EQ(extended.rounds, 3u);
  std::filesystem::remove_all(dir);
}

TEST_F(ResilienceTest, ResumeRejectsKernelBackendMismatch) {
  const double p = 1e-3;
  TargetFactory factory = [p](bayes::BayesianFaultNetwork& net) {
    return std::make_unique<bayes::PriorTarget>(net, p);
  };
  const std::string dir = fresh_dir("backend_mismatch");
  RunnerConfig config = small_runner();
  config.checkpoint_dir = dir;
  const CompletenessResult first =
      run_until_complete(*bfn_, factory, p, config, never_converge(2));
  ASSERT_EQ(first.rounds, 2u);

  // The checkpoint records the backend it ran on (scalar in the test
  // environment: BDLFI_BACKEND is unset).
  std::string error;
  auto ck = load_checkpoint(checkpoint_path(dir), &error);
  ASSERT_TRUE(ck.has_value()) << error;
  EXPECT_EQ(ck->backend, tensor::backend::active_name());

  // Rewrite it as if a vectorized backend had produced it; resuming under
  // the current (different) backend must be rejected with the dedicated
  // backend_mismatch flag, before the fingerprint even gets compared.
  ck->backend = "avx2-imaginary";
  ASSERT_TRUE(save_checkpoint(checkpoint_path(dir), *ck));
  RunnerConfig resume_config = config;
  resume_config.resume = true;
  const CompletenessResult rejected =
      run_until_complete(*bfn_, factory, p, resume_config, never_converge(4));
  EXPECT_TRUE(rejected.resume_rejected);
  EXPECT_TRUE(rejected.backend_mismatch);
  EXPECT_TRUE(rejected.final_result.failed);
  EXPECT_NE(rejected.final_result.fail_reason.find("backend"),
            std::string::npos);
  EXPECT_EQ(rejected.rounds, 0u);

  // A fingerprint mismatch alone is NOT flagged as a backend mismatch.
  RunnerConfig other_seed = resume_config;
  other_seed.seed = config.seed + 1;
  ck->backend = tensor::backend::active_name();
  ASSERT_TRUE(save_checkpoint(checkpoint_path(dir), *ck));
  const CompletenessResult fp_only =
      run_until_complete(*bfn_, factory, p, other_seed, never_converge(4));
  EXPECT_TRUE(fp_only.resume_rejected);
  EXPECT_FALSE(fp_only.backend_mismatch);
  std::filesystem::remove_all(dir);
}

TEST_F(ResilienceTest, ResumeWithoutCheckpointIsAFreshStart) {
  const double p = 1e-3;
  TargetFactory factory = [p](bayes::BayesianFaultNetwork& net) {
    return std::make_unique<bayes::PriorTarget>(net, p);
  };
  const std::string dir = fresh_dir("fresh");
  RunnerConfig config = small_runner();
  config.checkpoint_dir = dir;
  config.resume = true;  // nothing there yet: must not reject
  const CompletenessResult result =
      run_until_complete(*bfn_, factory, p, config, never_converge(2));
  EXPECT_FALSE(result.resume_rejected);
  EXPECT_EQ(result.resumed_from_round, 0u);
  EXPECT_EQ(result.rounds, 2u);
  EXPECT_TRUE(std::filesystem::exists(checkpoint_path(dir)));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bdlfi::mcmc
