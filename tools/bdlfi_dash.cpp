// bdlfi_dash — live terminal dashboard and static report generator over the
// campaign JSONL event streams that `bdlfi --metrics=<file.jsonl>` (and every
// bench) writes.
//
//   bdlfi_dash --once a.jsonl b.jsonl        one-shot summary to stdout
//   bdlfi_dash --follow a.jsonl b.jsonl      live ANSI view (tail -f style);
//                                            exits when every campaign ended
//   bdlfi_dash --once --html=report.html ... self-contained HTML report with
//                                            inline SVG sparklines
//   bdlfi_dash --once --json=state.json ...  machine-readable aggregate state
//   bdlfi_dash --follow --dir=fleet_out      watch every *.jsonl under a
//                                            fleet output tree (rescanned
//                                            each poll, so streams from
//                                            restarted workers join live)
//
// Any number of streams can be merged: events are keyed by the campaign_id
// the reporter stamps, so two workers extending one campaign collapse into a
// single row while unrelated concurrent campaigns stay separate. The reader
// side tolerates torn trailing lines, not-yet-created files, and writer
// restarts (obs/stream.h), so pointing --follow at a file before the campaign
// starts is fine.
//
// Flags:
//   --dir=DIR               recursively tail every *.jsonl under DIR
//   --interval-ms=N         follow-mode poll period (default 500)
//   --max-seconds=S         follow-mode wall-clock bound (0 = until done)
//   --require-campaigns=N   exit 3 unless >= N distinct campaigns were seen
//   --trend-window=N        rounds in the R-hat trend fit (default 16)
//
// Exit codes: 0 ok, 1 bad usage, 3 --require-campaigns unmet.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/aggregate.h"
#include "obs/json.h"
#include "obs/stream.h"

using namespace bdlfi;

namespace {

struct DashOptions {
  bool follow = false;
  std::string html_path;
  std::string json_path;
  std::size_t interval_ms = 500;
  double max_seconds = 0.0;
  std::size_t require_campaigns = 0;
  std::size_t trend_window = 16;
  std::vector<std::string> streams;
  std::vector<std::string> dirs;
};

bool parse_args(int argc, char** argv, DashOptions* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* name) -> const char* {
      const std::size_t n = std::strlen(name);
      return arg.compare(0, n, name) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--follow") {
      out->follow = true;
    } else if (arg == "--once") {
      out->follow = false;
    } else if (const char* v = value("--html=")) {
      out->html_path = v;
    } else if (const char* v = value("--json=")) {
      out->json_path = v;
    } else if (const char* v = value("--dir=")) {
      out->dirs.emplace_back(v);
    } else if (const char* v = value("--interval-ms=")) {
      out->interval_ms = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value("--max-seconds=")) {
      out->max_seconds = std::atof(v);
    } else if (const char* v = value("--require-campaigns=")) {
      out->require_campaigns = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value("--trend-window=")) {
      out->trend_window = static_cast<std::size_t>(std::atoll(v));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bdlfi_dash: unknown flag %s\n", arg.c_str());
      return false;
    } else {
      out->streams.push_back(arg);
    }
  }
  if (out->streams.empty() && out->dirs.empty()) {
    std::fprintf(stderr,
                 "usage: bdlfi_dash [--once|--follow] [--html=F] [--json=F]\n"
                 "                  [--dir=DIR] [--interval-ms=N]\n"
                 "                  [--max-seconds=S] [--require-campaigns=N]\n"
                 "                  [<stream.jsonl>...]\n");
    return false;
  }
  return true;
}

std::string format_eta(double seconds) {
  if (seconds < 0.0) return "--:--";
  const auto total = static_cast<std::uint64_t>(seconds + 0.5);
  char buf[32];
  if (total >= 3600) {
    std::snprintf(buf, sizeof(buf), "%llu:%02llu:%02llu",
                  static_cast<unsigned long long>(total / 3600),
                  static_cast<unsigned long long>((total / 60) % 60),
                  static_cast<unsigned long long>(total % 60));
  } else {
    std::snprintf(buf, sizeof(buf), "%02llu:%02llu",
                  static_cast<unsigned long long>(total / 60),
                  static_cast<unsigned long long>(total % 60));
  }
  return buf;
}

/// Unicode block sparkline of the last `width` values (terminal view).
std::string spark(const std::vector<double>& values, std::size_t width = 24) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  const std::size_t begin = values.size() > width ? values.size() - width : 0;
  double lo = values[begin], hi = values[begin];
  for (std::size_t i = begin; i < values.size(); ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  std::string out;
  for (std::size_t i = begin; i < values.size(); ++i) {
    const double t = hi > lo ? (values[i] - lo) / (hi - lo) : 0.0;
    out += kBlocks[static_cast<std::size_t>(t * 7.0 + 0.5)];
  }
  return out;
}

struct StreamStats {
  std::size_t lines = 0, parse_errors = 0, truncations = 0;
};

const char* status_word(const obs::CampaignState& c) {
  if (!c.ended) return "RUNNING";
  return c.converged ? "COMPLETE" : "NOT CONVERGED";
}

/// ANSI color for the status word (empty = no color / not a tty context).
const char* status_color(const obs::CampaignState& c, bool ansi) {
  if (!ansi) return "";
  if (!c.ended) return c.degraded ? "\x1b[33m" : "\x1b[36m";
  return c.converged ? "\x1b[32m" : "\x1b[31m";
}

void render_text(std::FILE* out, const obs::EventAggregator& agg,
                 const std::vector<std::unique_ptr<obs::JsonlTailReader>>& rd,
                 const DashOptions& opts, bool ansi) {
  if (ansi) std::fprintf(out, "\x1b[2J\x1b[H");
  const auto campaigns = agg.campaigns();
  std::size_t lines = 0, errors = 0, truncations = 0;
  for (const auto& r : rd) {
    lines += r->lines_read();
    errors += r->parse_errors();
    truncations += r->truncations();
  }
  std::fprintf(out,
               "bdlfi campaign dashboard — %zu campaign(s), %zu stream(s), "
               "%zu event(s)",
               campaigns.size(), rd.size(), agg.events_seen());
  if (agg.seq_gaps() + errors + truncations > 0) {
    std::fprintf(out, "  [%zu seq gap(s), %zu parse error(s), %zu restart(s)]",
                 agg.seq_gaps(), errors, truncations);
  }
  std::fprintf(out, "\n\n");

  const char* reset = ansi ? "\x1b[0m" : "";
  for (const obs::CampaignState* c : campaigns) {
    std::vector<double> rhats;
    rhats.reserve(c->trend.size());
    for (const auto& t : c->trend) rhats.push_back(t.rhat);

    std::fprintf(out, "%s%s%s %.8s  %s%s%s  backend=%s  p=%.3g\n",
                 status_color(*c, ansi), ansi ? "●" : "*", reset,
                 c->campaign_id.c_str(), c->label.c_str(),
                 c->subject.empty() ? "" : "  subject=",
                 c->subject.c_str(),
                 c->backend.empty() ? "?" : c->backend.c_str(), c->p);
    std::fprintf(out,
                 "  %s%s%s  round %zu/%zu (%.0f%% of budget)  eta %s\n",
                 status_color(*c, ansi), status_word(*c), reset,
                 c->rounds_seen, c->rounds_budget, 100.0 * c->completeness(),
                 format_eta(c->eta_seconds()).c_str());
    std::fprintf(out,
                 "  rhat %.4f (%+.4f/round)  ess %.0f  mean %.3f%%  "
                 "accept %.2f  %s\n",
                 c->rhat, c->rhat_trend(opts.trend_window), c->ess,
                 c->mean_error, c->acceptance_rate, spark(rhats).c_str());
    std::fprintf(out,
                 "  %.0f evals/s (ewma)  cache-hit %.0f%%  samples %zu  "
                 "evals %zu\n",
                 c->evals_per_sec.value(), 100.0 * c->cache_hit_rate,
                 c->samples, c->network_evals);
    std::fprintf(out,
                 "  outcomes masked=%zu sdc=%zu detected=%zu corrected=%zu  "
                 "det-cov %.0f%%  sdc %.2f%%\n",
                 c->outcome_masked, c->outcome_sdc, c->outcome_detected,
                 c->outcome_corrected, 100.0 * c->detection_coverage,
                 100.0 * c->sdc_rate);
    if (c->chains_quarantined + c->retries + c->quarantine_events > 0 ||
        c->degraded) {
      std::fprintf(out, "  health: %zu quarantined%s, %zu retry event(s)\n",
                   c->chains_quarantined, c->degraded ? " (degraded)" : "",
                   c->retries);
    }
    if (c->round_latency.present) {
      std::fprintf(out,
                   "  round latency p50=%.3gs p95=%.3gs p99=%.3gs (n=%llu)\n",
                   c->round_latency.p50, c->round_latency.p95,
                   c->round_latency.p99,
                   static_cast<unsigned long long>(c->round_latency.count));
    }
    if (!c->checkpoints.empty()) {
      const auto& last = c->checkpoints.back();
      std::fprintf(out, "  checkpoints: %zu (latest round %zu: %s)\n",
                   c->checkpoints.size(), last.round, last.path.c_str());
    }
    std::fprintf(out, "\n");
  }
  if (ansi) {
    for (const auto& r : rd) {
      std::fprintf(out, "stream %s: %llu bytes, %zu line(s)\n",
                   r->path().c_str(),
                   static_cast<unsigned long long>(r->offset()),
                   r->lines_read());
    }
  }
  std::fflush(out);
}

/// Aggregate state as one strict JSON document (the --json export and the
/// machine-readable block embedded in the HTML report).
std::string state_to_json(const obs::EventAggregator& agg,
                          const std::vector<std::string>& streams,
                          const DashOptions& opts) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("generated_by", "bdlfi_dash");
  w.key("streams").begin_array();
  for (const auto& s : streams) w.string(s);
  w.end_array();
  w.field("events_seen", static_cast<std::uint64_t>(agg.events_seen()));
  w.field("events_ignored", static_cast<std::uint64_t>(agg.events_ignored()));
  w.field("seq_gaps", static_cast<std::uint64_t>(agg.seq_gaps()));
  w.key("campaigns").begin_array();
  for (const obs::CampaignState* c : agg.campaigns()) {
    w.begin_object();
    w.field("campaign_id", c->campaign_id);
    w.field("label", c->label);
    w.field("backend", c->backend);
    w.field("subject", c->subject);
    w.field("status", status_word(*c));
    w.field("p", c->p);
    w.field("chains", static_cast<std::uint64_t>(c->chains));
    w.field("samples_per_round",
            static_cast<std::uint64_t>(c->samples_per_round));
    w.field("rounds_seen", static_cast<std::uint64_t>(c->rounds_seen));
    w.field("rounds_budget", static_cast<std::uint64_t>(c->rounds_budget));
    w.field("completeness", c->completeness());
    w.field("eta_s", c->eta_seconds());
    w.field("rhat", c->rhat);
    w.field("rhat_trend", c->rhat_trend(opts.trend_window));
    w.field("ess", c->ess);
    w.field("mean_error", c->mean_error);
    w.field("acceptance_rate", c->acceptance_rate);
    w.field("cache_hit_rate", c->cache_hit_rate);
    w.field("samples", static_cast<std::uint64_t>(c->samples));
    w.field("network_evals", static_cast<std::uint64_t>(c->network_evals));
    w.field("evals_per_sec_ewma", c->evals_per_sec.value());
    w.field("round_seconds_ewma", c->round_seconds.value());
    w.field("detection_coverage", c->detection_coverage);
    w.field("sdc_rate", c->sdc_rate);
    w.field("outcome_masked", static_cast<std::uint64_t>(c->outcome_masked));
    w.field("outcome_sdc", static_cast<std::uint64_t>(c->outcome_sdc));
    w.field("outcome_detected",
            static_cast<std::uint64_t>(c->outcome_detected));
    w.field("outcome_corrected",
            static_cast<std::uint64_t>(c->outcome_corrected));
    w.field("chains_quarantined",
            static_cast<std::uint64_t>(c->chains_quarantined));
    w.field("degraded", c->degraded);
    w.field("retries", static_cast<std::uint64_t>(c->retries));
    w.field("quarantine_events",
            static_cast<std::uint64_t>(c->quarantine_events));
    w.field("begun", c->begun);
    w.field("ended", c->ended);
    w.field("converged", c->converged);
    if (c->round_latency.present) {
      w.key("round_latency").begin_object();
      w.field("p50", c->round_latency.p50);
      w.field("p95", c->round_latency.p95);
      w.field("p99", c->round_latency.p99);
      w.field("count", c->round_latency.count);
      w.end_object();
    }
    w.key("trend").begin_array();
    for (const auto& t : c->trend) {
      w.begin_object();
      w.field("round", static_cast<std::uint64_t>(t.round));
      w.field("rhat", t.rhat);
      w.field("ess", t.ess);
      w.field("mean_error", t.mean_error);
      w.field("sdc_rate", t.sdc_rate);
      w.field("samples", static_cast<std::uint64_t>(t.samples));
      w.end_object();
    }
    w.end_array();
    w.key("checkpoints").begin_array();
    for (const auto& ck : c->checkpoints) {
      w.begin_object();
      w.field("round", static_cast<std::uint64_t>(ck.round));
      w.field("path", ck.path);
      w.field("ts_ms", ck.ts_ms);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

/// Inline SVG sparkline: a polyline over the series, no external assets.
std::string svg_spark(const std::vector<double>& values, const char* stroke) {
  const int kW = 260, kH = 48, kPad = 3;
  std::string svg = "<svg class=\"spark\" width=\"" + std::to_string(kW) +
                    "\" height=\"" + std::to_string(kH) +
                    "\" viewBox=\"0 0 " + std::to_string(kW) + " " +
                    std::to_string(kH) + "\">";
  if (values.size() >= 2) {
    double lo = values[0], hi = values[0];
    for (const double v : values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double span = hi > lo ? hi - lo : 1.0;
    std::string points;
    char buf[48];
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double x =
          kPad + (kW - 2.0 * kPad) * static_cast<double>(i) /
                     static_cast<double>(values.size() - 1);
      const double y = kH - kPad - (kH - 2.0 * kPad) * (values[i] - lo) / span;
      std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", x, y);
      points += buf;
    }
    svg += "<polyline fill=\"none\" stroke=\"";
    svg += stroke;
    svg += "\" stroke-width=\"1.5\" points=\"" + points + "\"/>";
  }
  svg += "</svg>";
  return svg;
}

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '&') out += "&amp;";
    else if (c == '<') out += "&lt;";
    else if (c == '>') out += "&gt;";
    else out += c;
  }
  return out;
}

bool write_html(const std::string& path, const obs::EventAggregator& agg,
                const DashOptions& opts) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bdlfi_dash: cannot write %s\n", path.c_str());
    return false;
  }
  std::string html;
  html += "<!doctype html><html><head><meta charset=\"utf-8\">"
          "<title>bdlfi campaign report</title><style>"
          "body{font-family:system-ui,sans-serif;margin:2rem;color:#1c2733}"
          "h1{font-size:1.4rem}h2{font-size:1.1rem;margin-top:2rem}"
          "table{border-collapse:collapse;margin:0.5rem 0}"
          "td,th{border:1px solid #c7d0d9;padding:0.25rem 0.6rem;"
          "font-size:0.85rem;text-align:left}"
          "th{background:#eef2f5}.ok{color:#1a7f37}.bad{color:#b42318}"
          ".run{color:#8a6d00}.spark{vertical-align:middle}"
          "code{background:#f2f4f6;padding:0 0.2rem}</style></head><body>";
  html += "<h1>bdlfi campaign report</h1>";
  html += "<p>" + std::to_string(agg.campaigns().size()) + " campaign(s), " +
          std::to_string(agg.events_seen()) + " event(s), " +
          std::to_string(agg.seq_gaps()) + " seq gap(s)</p>";

  // Cross-campaign sensitivity table: one row per campaign/subject so a
  // per-layer campaign set reads as the paper's layer-sensitivity ranking.
  html += "<h2>Sensitivity</h2><table><tr><th>campaign</th><th>subject</th>"
          "<th>p</th><th>mean error %</th><th>SDC rate</th>"
          "<th>detection coverage</th><th>status</th></tr>";
  for (const obs::CampaignState* c : agg.campaigns()) {
    char row[512];
    const char* cls = !c->ended ? "run" : (c->converged ? "ok" : "bad");
    std::snprintf(row, sizeof(row),
                  "<tr><td><code>%.8s</code> %s</td><td>%s</td>"
                  "<td>%.3g</td><td>%.3f</td><td>%.2f%%</td><td>%.0f%%</td>"
                  "<td class=\"%s\">%s</td></tr>",
                  c->campaign_id.c_str(), html_escape(c->label).c_str(),
                  html_escape(c->subject.empty() ? "(whole network)"
                                                 : c->subject)
                      .c_str(),
                  c->p, c->mean_error, 100.0 * c->sdc_rate,
                  100.0 * c->detection_coverage, cls, status_word(*c));
    html += row;
  }
  html += "</table>";

  for (const obs::CampaignState* c : agg.campaigns()) {
    std::vector<double> rhats, esses, sdcs;
    for (const auto& t : c->trend) {
      rhats.push_back(t.rhat);
      esses.push_back(t.ess);
      sdcs.push_back(t.sdc_rate);
    }
    html += "<h2><code>" + html_escape(c->campaign_id) + "</code> " +
            html_escape(c->label) + "</h2>";
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "<table>"
        "<tr><th>status</th><td>%s</td><th>backend</th><td>%s</td></tr>"
        "<tr><th>p</th><td>%.3g</td><th>chains</th><td>%zu</td></tr>"
        "<tr><th>round</th><td>%zu / %zu (%.0f%%)</td>"
        "<th>ETA</th><td>%s</td></tr>"
        "<tr><th>R-hat</th><td>%.4f (%+.4f/round)</td>"
        "<th>ESS</th><td>%.0f</td></tr>"
        "<tr><th>mean error</th><td>%.3f%%</td>"
        "<th>evals/s (ewma)</th><td>%.0f</td></tr>"
        "<tr><th>outcomes</th>"
        "<td colspan=\"3\">masked=%zu sdc=%zu detected=%zu corrected=%zu "
        "(det-cov %.0f%%, sdc %.2f%%)</td></tr>"
        "<tr><th>health</th><td colspan=\"3\">%zu quarantined%s, "
        "%zu retry event(s), %zu checkpoint(s)</td></tr>",
        status_word(*c), html_escape(c->backend).c_str(), c->p, c->chains,
        c->rounds_seen, c->rounds_budget, 100.0 * c->completeness(),
        format_eta(c->eta_seconds()).c_str(), c->rhat,
        c->rhat_trend(opts.trend_window), c->ess, c->mean_error,
        c->evals_per_sec.value(), c->outcome_masked, c->outcome_sdc,
        c->outcome_detected, c->outcome_corrected,
        100.0 * c->detection_coverage, 100.0 * c->sdc_rate,
        c->chains_quarantined, c->degraded ? " (degraded)" : "", c->retries,
        c->checkpoints.size());
    html += buf;
    if (c->round_latency.present) {
      std::snprintf(buf, sizeof(buf),
                    "<tr><th>round latency</th><td colspan=\"3\">"
                    "p50=%.3gs p95=%.3gs p99=%.3gs (n=%llu)</td></tr>",
                    c->round_latency.p50, c->round_latency.p95,
                    c->round_latency.p99,
                    static_cast<unsigned long long>(c->round_latency.count));
      html += buf;
    }
    html += "</table>";
    html += "<table><tr><th>R-hat</th><th>ESS</th><th>SDC rate</th></tr>"
            "<tr><td>" + svg_spark(rhats, "#b42318") + "</td><td>" +
            svg_spark(esses, "#1a7f37") + "</td><td>" +
            svg_spark(sdcs, "#6941c6") + "</td></tr></table>";
  }

  // Machine-readable copy of everything rendered above, produced by the
  // same strict writer the event stream uses.
  html += "<script id=\"bdlfi-state\" type=\"application/json\">";
  html += state_to_json(agg, opts.streams, opts);
  html += "</script></body></html>\n";
  const bool ok = std::fwrite(html.data(), 1, html.size(), f) == html.size();
  std::fclose(f);
  if (ok) std::printf("[html written to %s]\n", path.c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  DashOptions opts;
  if (!parse_args(argc, argv, &opts)) return 1;

  obs::EventAggregator agg;
  std::vector<std::unique_ptr<obs::JsonlTailReader>> readers;

  // Streams are discovered incrementally: explicit paths first, then every
  // *.jsonl under each --dir. opts.streams ends up listing the union so the
  // --json/--html exports reflect what was actually tailed.
  std::set<std::string> known;
  const std::vector<std::string> explicit_streams = opts.streams;
  opts.streams.clear();
  const auto add_stream = [&](const std::string& path) {
    if (!known.insert(path).second) return;
    opts.streams.push_back(path);
    readers.push_back(std::make_unique<obs::JsonlTailReader>(path));
  };
  // Re-run every poll in follow mode: a restarted fleet worker opens a fresh
  // metrics-a<attempt>.jsonl, which must join the merge while it is live.
  const auto scan_dirs = [&]() {
    namespace fs = std::filesystem;
    for (const auto& dir : opts.dirs) {
      std::vector<std::string> found;
      std::error_code ec;
      fs::recursive_directory_iterator it(dir, ec), end;
      for (; !ec && it != end; it.increment(ec)) {
        std::error_code file_ec;
        if (it->is_regular_file(file_ec) &&
            it->path().extension() == ".jsonl") {
          found.push_back(it->path().string());
        }
      }
      std::sort(found.begin(), found.end());
      for (const auto& p : found) add_stream(p);
    }
  };
  for (const auto& path : explicit_streams) add_stream(path);
  scan_dirs();

  const auto poll_all = [&]() {
    std::size_t added = 0;
    for (auto& r : readers) {
      std::vector<obs::JsonValue> events;
      added += r->poll(&events);
      agg.ingest_all(events, r->path());
    }
    return added;
  };

  if (opts.follow) {
    const auto start = std::chrono::steady_clock::now();
    for (;;) {
      scan_dirs();
      poll_all();
      render_text(stdout, agg, readers, opts, /*ansi=*/true);
      const auto campaigns = agg.campaigns();
      const bool all_done =
          !campaigns.empty() &&
          std::all_of(campaigns.begin(), campaigns.end(),
                      [](const obs::CampaignState* c) { return c->ended; });
      if (all_done) break;
      if (opts.max_seconds > 0.0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        if (elapsed >= opts.max_seconds) break;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts.interval_ms));
    }
  } else {
    poll_all();
    render_text(stdout, agg, readers, opts, /*ansi=*/false);
  }

  if (!opts.json_path.empty()) {
    std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bdlfi_dash: cannot write %s\n",
                   opts.json_path.c_str());
      return 1;
    }
    const std::string doc = state_to_json(agg, opts.streams, opts);
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("[json written to %s]\n", opts.json_path.c_str());
  }
  if (!opts.html_path.empty() && !write_html(opts.html_path, agg, opts)) {
    return 1;
  }

  if (opts.require_campaigns > 0 &&
      agg.campaigns().size() < opts.require_campaigns) {
    std::fprintf(stderr,
                 "bdlfi_dash: %zu campaign(s) seen, %zu required\n",
                 agg.campaigns().size(), opts.require_campaigns);
    return 3;
  }
  return 0;
}
