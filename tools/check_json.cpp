// check_json — validates observability output files.
//
//   check_json file.json            strict single-document JSON
//   check_json --jsonl file.jsonl   one JSON document per non-empty line
//   check_json --trace file.json    Chrome trace: object with a traceEvents
//                                   array of {name, ph, ts, pid, tid} events
//   check_json --checkpoint f.json  bdlfi campaign checkpoint: schema/version
//                                   header, hex fingerprint, trajectory and
//                                   per-chain entries (status, sample arrays
//                                   of equal length, cursor object or null)
//   check_json --mask-eval f.json   BENCH_mask_eval.json: config + per-layer
//                                   timings, the multi_mask batched-race
//                                   section (groups, k_sweep, summary), the
//                                   fused-eval race, and the truncated-replay
//                                   summary
//   check_json --fleet-spec f.json  bdlfi fleet campaign spec: parsed and
//                                   expanded with the same strict loader the
//                                   fleet runner uses, so "spec validates"
//                                   means "spec runs"
//   check_json --hardening f.json   BENCH_hardening_loop.json: baseline and
//                                   hardened assessment blocks, tuning tally,
//                                   protection-budget frontier (checked to be
//                                   monotone), and the gated summary
//
// Exit 0 on valid input, 1 on malformed input or unreadable file. Used by the
// ctest smoke chain to check that `bdlfi --trace/--metrics` emit what
// DESIGN.md promises, with the same parser the obs tests use.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "fleet/spec.h"
#include "obs/json.h"

using namespace bdlfi;

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool check_trace(const obs::JsonValue& doc, std::string* error) {
  if (!doc.is_object()) {
    *error = "trace root is not an object";
    return false;
  }
  const obs::JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    *error = "missing traceEvents array";
    return false;
  }
  std::size_t index = 0;
  for (const auto& event : events->as_array()) {
    const char* missing = nullptr;
    const obs::JsonValue* name = event.find("name");
    const obs::JsonValue* ph = event.find("ph");
    const obs::JsonValue* ts = event.find("ts");
    const obs::JsonValue* pid = event.find("pid");
    const obs::JsonValue* tid = event.find("tid");
    if (name == nullptr || !name->is_string()) missing = "name";
    else if (ph == nullptr || !ph->is_string()) missing = "ph";
    else if (ts == nullptr || !ts->is_number()) missing = "ts";
    else if (pid == nullptr || !pid->is_number()) missing = "pid";
    else if (tid == nullptr || !tid->is_number()) missing = "tid";
    if (missing != nullptr) {
      *error = "traceEvents[" + std::to_string(index) +
               "]: bad or missing \"" + missing + "\"";
      return false;
    }
    ++index;
  }
  return true;
}

bool is_hex64(const std::string& s) {
  if (s.size() != 16) return false;
  for (const char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

bool numeric_array(const obs::JsonValue& obj, const std::string& key,
                   std::size_t* length) {
  const obs::JsonValue* arr = obj.find(key);
  if (arr == nullptr || !arr->is_array()) return false;
  for (const auto& v : arr->as_array()) {
    // null is the writer's encoding of a non-finite double: legal.
    if (!v.is_number() && !v.is_null()) return false;
  }
  *length = arr->as_array().size();
  return true;
}

bool check_checkpoint(const obs::JsonValue& doc, std::string* error) {
  if (!doc.is_object()) {
    *error = "checkpoint root is not an object";
    return false;
  }
  const obs::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "bdlfi_campaign_checkpoint") {
    *error = "missing/unknown schema tag";
    return false;
  }
  const obs::JsonValue* version = doc.find("version");
  if (version == nullptr || !version->is_number() ||
      version->as_number() < 1) {
    *error = "missing/invalid version";
    return false;
  }
  const obs::JsonValue* fp = doc.find("fingerprint");
  if (fp == nullptr || !fp->is_string() || !is_hex64(fp->as_string())) {
    *error = "fingerprint must be 16 lowercase hex digits";
    return false;
  }
  // Optional (absent in pre-backend checkpoints, which were always scalar);
  // when present it must be a non-empty backend name.
  const obs::JsonValue* backend = doc.find("backend");
  if (backend != nullptr &&
      (!backend->is_string() || backend->as_string().empty())) {
    *error = "\"backend\" must be a non-empty string";
    return false;
  }
  for (const char* key : {"p", "rounds_completed", "prev_evals"}) {
    const obs::JsonValue* v = doc.find(key);
    if (v == nullptr || !v->is_number()) {
      *error = std::string("missing/invalid \"") + key + "\"";
      return false;
    }
  }
  const obs::JsonValue* converged = doc.find("converged");
  if (converged == nullptr || !converged->is_bool()) {
    *error = "missing/invalid \"converged\"";
    return false;
  }
  const obs::JsonValue* trajectory = doc.find("trajectory");
  if (trajectory == nullptr || !trajectory->is_array()) {
    *error = "missing trajectory array";
    return false;
  }
  std::size_t index = 0;
  for (const auto& entry : trajectory->as_array()) {
    for (const char* key : {"samples", "mean_error", "rhat", "ess"}) {
      const obs::JsonValue* v = entry.find(key);
      if (v == nullptr || (!v->is_number() && !v->is_null())) {
        *error = "trajectory[" + std::to_string(index) +
                 "]: bad or missing \"" + key + "\"";
        return false;
      }
    }
    ++index;
  }
  const obs::JsonValue* chains = doc.find("chains");
  if (chains == nullptr || !chains->is_array()) {
    *error = "missing chains array";
    return false;
  }
  // v2 checkpoints carry the per-chain fault-outcome taxonomy counters; their
  // absence would silently zero the campaign's detection-coverage numbers on
  // resume, so at v2+ they are schema errors, not optional fields.
  const bool wants_outcomes = version->as_number() >= 2;
  index = 0;
  for (const auto& chain : chains->as_array()) {
    const std::string at = "chains[" + std::to_string(index) + "]";
    const obs::JsonValue* status = chain.find("status");
    if (status == nullptr || !status->is_string() ||
        (status->as_string() != "healthy" &&
         status->as_string() != "quarantined")) {
      *error = at + ": bad or missing \"status\"";
      return false;
    }
    std::size_t errors = 0, deviations = 0, flips = 0;
    if (!numeric_array(chain, "error_samples", &errors) ||
        !numeric_array(chain, "deviation_samples", &deviations) ||
        !numeric_array(chain, "flips_samples", &flips)) {
      *error = at + ": bad or missing sample arrays";
      return false;
    }
    if (errors != deviations || errors != flips) {
      *error = at + ": sample arrays have mismatched lengths";
      return false;
    }
    if (wants_outcomes) {
      for (const char* key : {"outcome_masked", "outcome_sdc",
                              "outcome_detected", "outcome_corrected"}) {
        const obs::JsonValue* v = chain.find(key);
        if (v == nullptr || !v->is_number()) {
          *error = at + ": bad or missing \"" + key + "\" (required at v2)";
          return false;
        }
      }
    }
    const obs::JsonValue* cursor = chain.find("cursor");
    if (cursor == nullptr || (!cursor->is_object() && !cursor->is_null())) {
      *error = at + ": cursor must be an object or null";
      return false;
    }
    if (cursor->is_object()) {
      const obs::JsonValue* rng = cursor->find("rng");
      const obs::JsonValue* mask = cursor->find("mask");
      if (rng == nullptr || !rng->is_string() || mask == nullptr ||
          !mask->is_array()) {
        *error = at + ": cursor needs an rng string and a mask array";
        return false;
      }
    }
    ++index;
  }
  return true;
}

bool require_numbers(const obs::JsonValue& obj,
                     std::initializer_list<const char*> keys,
                     const std::string& at, std::string* error) {
  for (const char* key : keys) {
    const obs::JsonValue* v = obj.find(key);
    if (v == nullptr || !v->is_number()) {
      *error = at + ": bad or missing \"" + key + "\"";
      return false;
    }
  }
  return true;
}

/// Validates the perf_mask_eval bench document (DESIGN.md §6/§10): per-layer
/// truncated-replay timings plus the batched multi-mask race section.
bool check_mask_eval(const obs::JsonValue& doc, std::string* error) {
  if (!doc.is_object()) {
    *error = "mask_eval root is not an object";
    return false;
  }
  const obs::JsonValue* config = doc.find("config");
  if (config == nullptr || !config->is_object()) {
    *error = "missing config object";
    return false;
  }
  if (!require_numbers(*config,
                       {"width", "image_size", "eval_batch", "masks", "reps",
                        "p", "depth"},
                       "config", error)) {
    return false;
  }
  const obs::JsonValue* layers = doc.find("layers");
  if (layers == nullptr || !layers->is_array() ||
      layers->as_array().empty()) {
    *error = "missing/empty layers array";
    return false;
  }
  std::size_t index = 0;
  for (const auto& layer : layers->as_array()) {
    const std::string at = "layers[" + std::to_string(index) + "]";
    const obs::JsonValue* name = layer.find("name");
    if (name == nullptr || !name->is_string()) {
      *error = at + ": bad or missing \"name\"";
      return false;
    }
    if (!require_numbers(layer,
                         {"layer_index", "params", "evals", "full_evals_per_s",
                          "truncated_evals_per_s", "speedup",
                          "layers_saved_pct"},
                         at, error)) {
      return false;
    }
    ++index;
  }
  const obs::JsonValue* mm = doc.find("multi_mask");
  if (mm == nullptr || !mm->is_object()) {
    *error = "missing multi_mask object";
    return false;
  }
  if (!require_numbers(*mm, {"mask_batch_default"}, "multi_mask", error)) {
    return false;
  }
  const obs::JsonValue* groups = mm->find("groups");
  if (groups == nullptr || !groups->is_array() ||
      groups->as_array().size() != layers->as_array().size()) {
    *error = "multi_mask.groups must mirror the layers array";
    return false;
  }
  index = 0;
  for (const auto& group : groups->as_array()) {
    const std::string at = "multi_mask.groups[" + std::to_string(index) + "]";
    const obs::JsonValue* name = group.find("name");
    if (name == nullptr || !name->is_string()) {
      *error = at + ": bad or missing \"name\"";
      return false;
    }
    if (!require_numbers(group,
                         {"layer_index", "seq_s", "batched_s", "speedup"}, at,
                         error)) {
      return false;
    }
    ++index;
  }
  const obs::JsonValue* sweep = mm->find("k_sweep");
  if (sweep == nullptr || !sweep->is_array() || sweep->as_array().empty()) {
    *error = "missing/empty multi_mask.k_sweep array";
    return false;
  }
  index = 0;
  for (const auto& point : sweep->as_array()) {
    const std::string at = "multi_mask.k_sweep[" + std::to_string(index) + "]";
    if (!require_numbers(point, {"k", "batched_s", "speedup"}, at, error)) {
      return false;
    }
    ++index;
  }
  const obs::JsonValue* mm_summary = mm->find("summary");
  if (mm_summary == nullptr || !mm_summary->is_object() ||
      !require_numbers(*mm_summary, {"overall_speedup"}, "multi_mask.summary",
                       error)) {
    if (error->empty()) *error = "missing multi_mask.summary object";
    return false;
  }
  const obs::JsonValue* gate = mm_summary->find("gate_enforced");
  if (gate == nullptr || !gate->is_bool()) {
    *error = "multi_mask.summary: bad or missing \"gate_enforced\"";
    return false;
  }
  const obs::JsonValue* fusion = doc.find("fusion");
  if (fusion == nullptr || !fusion->is_object() ||
      !require_numbers(*fusion,
                       {"masks_per_rep", "reps", "unfused_s", "fused_s",
                        "speedup"},
                       "fusion", error)) {
    if (error->empty()) *error = "missing fusion object";
    return false;
  }
  const obs::JsonValue* summary = doc.find("summary");
  if (summary == nullptr || !summary->is_object() ||
      !require_numbers(*summary,
                       {"overall_speedup", "last_third_speedup",
                        "last_third_begin"},
                       "summary", error)) {
    if (error->empty()) *error = "missing summary object";
    return false;
  }
  return true;
}

/// Validates the tab_hardening_loop bench document (DESIGN.md §6/§14):
/// baseline/hardened assessment blocks, the tuning tally, the protection-
/// budget frontier (structurally monotone in both budget and coverage), and
/// the gated summary.
bool check_hardening(const obs::JsonValue& doc, std::string* error) {
  if (!doc.is_object()) {
    *error = "hardening root is not an object";
    return false;
  }
  const obs::JsonValue* config = doc.find("config");
  if (config == nullptr || !config->is_object() ||
      !require_numbers(*config,
                       {"p", "injections", "chains", "round_samples",
                        "tune_epochs", "inject_prob", "budget"},
                       "config", error)) {
    if (error->empty()) *error = "missing config object";
    return false;
  }
  const obs::JsonValue* baseline = doc.find("baseline");
  if (baseline == nullptr || !baseline->is_object() ||
      !require_numbers(*baseline,
                       {"sdc_rate_pct", "detection_coverage_pct",
                        "mean_deviation_pct", "clean_accuracy_pct"},
                       "baseline", error)) {
    if (error->empty()) *error = "missing baseline object";
    return false;
  }
  const obs::JsonValue* campaign = doc.find("campaign");
  if (campaign == nullptr || !campaign->is_object() ||
      !require_numbers(*campaign,
                       {"profile_samples", "profile_flips",
                        "mean_deviation_before_pct",
                        "mean_deviation_after_pct"},
                       "campaign", error)) {
    if (error->empty()) *error = "missing campaign object";
    return false;
  }
  const obs::JsonValue* tuning = doc.find("tuning");
  if (tuning == nullptr || !tuning->is_object() ||
      !require_numbers(*tuning,
                       {"batches_injected", "flips_injected",
                        "updates_skipped", "final_test_accuracy_pct"},
                       "tuning", error)) {
    if (error->empty()) *error = "missing tuning object";
    return false;
  }
  const obs::JsonValue* hardened = doc.find("hardened");
  const obs::JsonValue* deployed =
      hardened != nullptr && hardened->is_object() ? hardened->find("deployed")
                                                   : nullptr;
  if (deployed == nullptr || !deployed->is_object() ||
      !require_numbers(*deployed,
                       {"sdc_rate_pct", "clean_accuracy_pct", "guard_layers",
                        "abft_layers"},
                       "hardened.deployed", error)) {
    if (error->empty()) *error = "missing hardened.deployed object";
    return false;
  }
  const obs::JsonValue* frontier = doc.find("frontier");
  if (frontier == nullptr || !frontier->is_array() ||
      frontier->as_array().empty()) {
    *error = "missing/empty frontier array";
    return false;
  }
  double prev_budget = -1.0, prev_coverage = -1.0;
  std::size_t index = 0;
  for (const auto& point : frontier->as_array()) {
    const std::string at = "frontier[" + std::to_string(index) + "]";
    if (!require_numbers(point, {"budget", "coverage", "overhead", "guards"},
                         at, error)) {
      return false;
    }
    const double budget = point.find("budget")->as_number();
    const double coverage = point.find("coverage")->as_number();
    if (budget < prev_budget) {
      *error = at + ": budgets must be non-decreasing";
      return false;
    }
    // The budget frontier's contract (and the bench's non-smoke gate): more
    // budget never buys less posterior-mass coverage.
    if (coverage < prev_coverage - 1e-9) {
      *error = at + ": coverage decreased with budget (frontier not monotone)";
      return false;
    }
    prev_budget = budget;
    prev_coverage = coverage;
    ++index;
  }
  const obs::JsonValue* summary = doc.find("summary");
  if (summary == nullptr || !summary->is_object() ||
      !require_numbers(*summary,
                       {"sdc_before_pct", "sdc_after_pct",
                        "sdc_reduction_pct", "sdc_remaining_pct",
                        "clean_acc_delta_pct", "clean_acc_drop_pct"},
                       "summary", error)) {
    if (error->empty()) *error = "missing summary object";
    return false;
  }
  const obs::JsonValue* remaining = summary->find("sdc_remaining_pct");
  if (!(remaining->as_number() > 0.0)) {
    *error = "summary.sdc_remaining_pct must be positive (bench_track "
             "headline)";
    return false;
  }
  for (const char* key : {"frontier_monotone", "gate_enforced"}) {
    const obs::JsonValue* v = summary->find(key);
    if (v == nullptr || !v->is_bool()) {
      *error = std::string("summary: bad or missing \"") + key + "\"";
      return false;
    }
  }
  return true;
}

/// Second pass over an already-jsonl_valid stream: every campaign event must
/// carry the flight-recorder envelope (16-hex campaign_id plus a strictly
/// increasing per-file seq), round events the numeric fault-outcome taxonomy
/// and throughput fields, and campaign_end its convergence verdict
/// (DESIGN.md §6/§9/§11).
bool check_round_events(const std::string& text, std::string* error) {
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  std::uint64_t last_seq = 0;
  bool seq_seen = false;
  while (std::getline(stream, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string parse_error;
    const auto doc = obs::json_parse(line, &parse_error);
    if (!doc.has_value() || !doc->is_object()) continue;  // jsonl_valid passed
    const obs::JsonValue* event = doc->find("event");
    if (event == nullptr || !event->is_string()) continue;
    const std::string at = "line " + std::to_string(line_no);

    const obs::JsonValue* id = doc->find("campaign_id");
    if (id == nullptr || !id->is_string() || !is_hex64(id->as_string())) {
      *error = at + ": \"" + event->as_string() +
               "\" event: campaign_id must be 16 lowercase hex digits";
      return false;
    }
    const obs::JsonValue* seq = doc->find("seq");
    if (seq == nullptr || !seq->is_number() || seq->as_number() < 1) {
      *error = at + ": \"" + event->as_string() +
               "\" event has bad or missing \"seq\"";
      return false;
    }
    const auto s = static_cast<std::uint64_t>(seq->as_number());
    if (seq_seen && s <= last_seq) {
      *error = at + ": seq " + std::to_string(s) +
               " not strictly increasing (previous " +
               std::to_string(last_seq) + ")";
      return false;
    }
    seq_seen = true;
    last_seq = s;

    const auto require_number = [&](const char* key) {
      const obs::JsonValue* v = doc->find(key);
      if (v != nullptr && v->is_number()) return true;
      *error = at + ": \"" + event->as_string() +
               "\" event has bad or missing \"" + key + "\"";
      return false;
    };
    const auto require_string = [&](const char* key) {
      const obs::JsonValue* v = doc->find(key);
      if (v != nullptr && v->is_string() && !v->as_string().empty()) {
        return true;
      }
      *error = at + ": \"" + event->as_string() +
               "\" event has bad or missing \"" + key + "\"";
      return false;
    };

    if (event->as_string() == "round") {
      for (const char* key :
           {"detection_coverage", "sdc_rate", "outcome_masked", "outcome_sdc",
            "outcome_detected", "outcome_corrected", "evals_per_sec_ewma",
            "eta_s", "rounds_budget"}) {
        const obs::JsonValue* v = doc->find(key);
        if (v == nullptr || !v->is_number()) {
          *error = at + ": round event has bad or missing \"" + key + "\"";
          return false;
        }
      }
    } else if (event->as_string() == "campaign_end") {
      const obs::JsonValue* converged = doc->find("converged");
      if (converged == nullptr || !converged->is_bool()) {
        *error = at + ": campaign_end has bad or missing \"converged\"";
        return false;
      }
      const obs::JsonValue* rounds = doc->find("rounds");
      if (rounds == nullptr || !rounds->is_number()) {
        *error = at + ": campaign_end has bad or missing \"rounds\"";
        return false;
      }
    } else if (event->as_string() == "worker_start") {
      // Fleet worker lifecycle events (DESIGN.md §12): every one names its
      // campaign and carries the worker pid + 1-based launch attempt.
      if (!require_string("campaign") || !require_number("pid") ||
          !require_number("attempt")) {
        return false;
      }
    } else if (event->as_string() == "worker_exit") {
      if (!require_string("campaign") || !require_number("pid") ||
          !require_number("attempt") || !require_number("exit_code") ||
          !require_number("signal") || !require_number("rounds") ||
          !require_string("outcome")) {
        return false;
      }
    } else if (event->as_string() == "worker_restart") {
      if (!require_string("campaign") || !require_number("attempt") ||
          !require_number("backoff_ms") || !require_string("reason")) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool jsonl = false, trace = false, checkpoint = false, mask_eval = false;
  bool fleet_spec = false, hardening = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jsonl") == 0) {
      jsonl = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
      checkpoint = true;
    } else if (std::strcmp(argv[i], "--mask-eval") == 0) {
      mask_eval = true;
    } else if (std::strcmp(argv[i], "--fleet-spec") == 0) {
      fleet_spec = true;
    } else if (std::strcmp(argv[i], "--hardening") == 0) {
      hardening = true;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr ||
      (static_cast<int>(jsonl) + static_cast<int>(trace) +
           static_cast<int>(checkpoint) + static_cast<int>(mask_eval) +
           static_cast<int>(fleet_spec) + static_cast<int>(hardening) >
       1)) {
    std::fprintf(
        stderr,
        "usage: check_json [--jsonl|--trace|--checkpoint|--mask-eval|"
        "--fleet-spec|--hardening] <file>\n");
    return 2;
  }

  if (fleet_spec) {
    // The validator IS the runner's loader: no second schema to drift.
    std::string error;
    const auto spec = fleet::load_fleet_spec(path, &error);
    if (!spec.has_value()) {
      std::fprintf(stderr, "check_json: %s: %s\n", path, error.c_str());
      return 1;
    }
    std::printf("%s: OK (%zu campaign(s) after expansion, fleet id %s)\n",
                path, spec->campaigns.size(), spec->id.c_str());
    return 0;
  }

  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "check_json: cannot read %s\n", path);
    return 1;
  }

  std::string error;
  if (jsonl) {
    if (!obs::jsonl_valid(text, &error) || !check_round_events(text, &error)) {
      std::fprintf(stderr, "check_json: %s: %s\n", path, error.c_str());
      return 1;
    }
  } else {
    const auto doc = obs::json_parse(text, &error);
    if (!doc.has_value()) {
      std::fprintf(stderr, "check_json: %s: %s\n", path, error.c_str());
      return 1;
    }
    if (trace && !check_trace(*doc, &error)) {
      std::fprintf(stderr, "check_json: %s: %s\n", path, error.c_str());
      return 1;
    }
    if (checkpoint && !check_checkpoint(*doc, &error)) {
      std::fprintf(stderr, "check_json: %s: %s\n", path, error.c_str());
      return 1;
    }
    if (mask_eval && !check_mask_eval(*doc, &error)) {
      std::fprintf(stderr, "check_json: %s: %s\n", path, error.c_str());
      return 1;
    }
    if (hardening && !check_hardening(*doc, &error)) {
      std::fprintf(stderr, "check_json: %s: %s\n", path, error.c_str());
      return 1;
    }
  }
  std::printf("%s: OK\n", path);
  return 0;
}
