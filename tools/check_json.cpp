// check_json — validates observability output files.
//
//   check_json file.json            strict single-document JSON
//   check_json --jsonl file.jsonl   one JSON document per non-empty line
//   check_json --trace file.json    Chrome trace: object with a traceEvents
//                                   array of {name, ph, ts, pid, tid} events
//
// Exit 0 on valid input, 1 on malformed input or unreadable file. Used by the
// ctest smoke chain to check that `bdlfi --trace/--metrics` emit what
// DESIGN.md promises, with the same parser the obs tests use.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

using namespace bdlfi;

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool check_trace(const obs::JsonValue& doc, std::string* error) {
  if (!doc.is_object()) {
    *error = "trace root is not an object";
    return false;
  }
  const obs::JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    *error = "missing traceEvents array";
    return false;
  }
  std::size_t index = 0;
  for (const auto& event : events->as_array()) {
    const char* missing = nullptr;
    const obs::JsonValue* name = event.find("name");
    const obs::JsonValue* ph = event.find("ph");
    const obs::JsonValue* ts = event.find("ts");
    const obs::JsonValue* pid = event.find("pid");
    const obs::JsonValue* tid = event.find("tid");
    if (name == nullptr || !name->is_string()) missing = "name";
    else if (ph == nullptr || !ph->is_string()) missing = "ph";
    else if (ts == nullptr || !ts->is_number()) missing = "ts";
    else if (pid == nullptr || !pid->is_number()) missing = "pid";
    else if (tid == nullptr || !tid->is_number()) missing = "tid";
    if (missing != nullptr) {
      *error = "traceEvents[" + std::to_string(index) +
               "]: bad or missing \"" + missing + "\"";
      return false;
    }
    ++index;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool jsonl = false, trace = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jsonl") == 0) {
      jsonl = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr || (jsonl && trace)) {
    std::fprintf(stderr, "usage: check_json [--jsonl|--trace] <file>\n");
    return 2;
  }

  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "check_json: cannot read %s\n", path);
    return 1;
  }

  std::string error;
  if (jsonl) {
    if (!obs::jsonl_valid(text, &error)) {
      std::fprintf(stderr, "check_json: %s: %s\n", path, error.c_str());
      return 1;
    }
  } else {
    const auto doc = obs::json_parse(text, &error);
    if (!doc.has_value()) {
      std::fprintf(stderr, "check_json: %s: %s\n", path, error.c_str());
      return 1;
    }
    if (trace && !check_trace(*doc, &error)) {
      std::fprintf(stderr, "check_json: %s: %s\n", path, error.c_str());
      return 1;
    }
  }
  std::printf("%s: OK\n", path);
  return 0;
}
