// bench_track — appends BENCH_<name>.json results to the bench-history
// ledger and gates on regressions against the best prior result with the
// same config fingerprint.
//
//   bench_track [--history=bench_results/history.jsonl] [--threshold=0.35]
//               [--include-smoke] [--check-only] [--truncate] [--scale=X]
//               BENCH_kernels.json BENCH_abft.json ...
//
// Every document is always recorded (a flight recorder keeps the bad flights
// too — and the "best prior" baseline is immune to slow entries); the exit
// code is the alarm. Smoke-sized runs are recorded but only gate with
// --include-smoke: their workloads are too small to time reliably on a busy
// machine, except in the deliberately self-consistent ctest chain.
//
// --scale multiplies the extracted headline metric before recording — a
// what-if/self-test knob: the ctest chain replays a recorded result with
// --scale=0.5 to prove a 2x slowdown actually trips the gate.
//
// Exit codes: 0 ok, 1 regression detected, 2 bad usage/unreadable input.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/history.h"
#include "obs/json.h"

using namespace bdlfi;

namespace {

std::uint64_t wall_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// BENCH_<name>.json (any directory) -> <name>.
std::string bench_name_from_path(const std::string& path) {
  std::string stem = std::filesystem::path(path).stem().string();
  if (stem.rfind("BENCH_", 0) == 0) stem = stem.substr(6);
  return stem;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string history_path = "bench_results/history.jsonl";
  double threshold = 0.35;
  double scale = 1.0;
  bool include_smoke = false, check_only = false, truncate = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* name) -> const char* {
      const std::size_t n = std::strlen(name);
      return arg.compare(0, n, name) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--history=")) {
      history_path = v;
    } else if (const char* v = value("--threshold=")) {
      threshold = std::atof(v);
    } else if (const char* v = value("--scale=")) {
      scale = std::atof(v);
    } else if (arg == "--include-smoke") {
      include_smoke = true;
    } else if (arg == "--check-only") {
      check_only = true;
    } else if (arg == "--truncate") {
      truncate = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_track: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(
        stderr,
        "usage: bench_track [--history=F] [--threshold=X] [--include-smoke]\n"
        "                   [--check-only] [--truncate] [--scale=X] "
        "BENCH_*.json...\n");
    return 2;
  }

  const std::filesystem::path dir =
      std::filesystem::path(history_path).parent_path();
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
  }
  if (truncate) {
    std::error_code ec;
    std::filesystem::remove(history_path, ec);
  }

  std::size_t skipped = 0;
  const std::vector<bench::HistoryEntry> prior =
      bench::load_history(history_path, &skipped);
  if (skipped > 0) {
    std::fprintf(stderr, "bench_track: skipped %zu malformed history line(s)\n",
                 skipped);
  }

  bool any_regression = false;
  for (const std::string& input : inputs) {
    std::string text, error;
    if (!read_file(input, &text)) {
      std::fprintf(stderr, "bench_track: cannot read %s\n", input.c_str());
      return 2;
    }
    const auto doc = obs::json_parse(text, &error);
    if (!doc.has_value()) {
      std::fprintf(stderr, "bench_track: %s: %s\n", input.c_str(),
                   error.c_str());
      return 2;
    }
    auto entry =
        bench::entry_from_bench_doc(*doc, bench_name_from_path(input), &error);
    if (!entry.has_value()) {
      std::fprintf(stderr, "bench_track: %s: %s\n", input.c_str(),
                   error.c_str());
      return 2;
    }
    entry->value *= scale;
    entry->ts_ms = wall_ms();

    const bench::RegressionCheck check =
        bench::check_regression(prior, *entry, threshold);
    const bool gated = include_smoke || !entry->smoke;
    const char* verdict = "recorded (no baseline)";
    if (check.has_baseline) {
      if (!gated) {
        verdict = "smoke: informational only";
      } else if (check.regression) {
        verdict = "REGRESSION";
        any_regression = true;
      } else {
        verdict = "ok";
      }
    }
    std::printf("%-10s %s=%.4g%s fingerprint=%.8s", entry->bench.c_str(),
                entry->metric.c_str(), entry->value,
                entry->smoke ? " (smoke)" : "", entry->fingerprint.c_str());
    if (check.has_baseline) {
      std::printf("  best=%.4g (%+.0f%% vs best)", check.best,
                  100.0 * (entry->higher_is_better
                               ? (entry->value - check.best) / check.best
                               : (check.best - entry->value) / check.best));
    }
    std::printf("  -> %s\n", verdict);

    if (!check_only && !bench::append_history(history_path, *entry)) {
      std::fprintf(stderr, "bench_track: cannot append to %s\n",
                   history_path.c_str());
      return 2;
    }
  }
  if (any_regression) {
    std::fprintf(stderr,
                 "bench_track: regression beyond %.0f%% threshold (see "
                 "%s for the ledger)\n",
                 100.0 * threshold, history_path.c_str());
    return 1;
  }
  return 0;
}
