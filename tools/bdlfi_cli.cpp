// bdlfi — command-line front end for fault-injection campaigns.
//
// Lets a user run the whole paper workflow without writing C++:
//
//   bdlfi train   --model=mlp|resnet --out=golden.ckpt [--epochs=..]
//   bdlfi sweep   --ckpt=golden.ckpt --p-lo=1e-5 --p-hi=1e-1 [--points=9]
//   bdlfi layers  --ckpt=golden.ckpt --p=1e-3 [--dose=4]
//   bdlfi random  --ckpt=golden.ckpt --p=1e-3 --injections=1000
//   bdlfi complete --ckpt=golden.ckpt --p=1e-3       (mixing-based stop)
//
// The dataset is regenerated deterministically from --data-seed, so a
// checkpoint plus the command line fully reproduces any result. Model
// architecture is stored implicitly: --model/--width/--image-size must match
// between `train` and later commands (checkpoints validate names/shapes and
// refuse mismatches).
// Observability (any command): --progress streams per-round campaign health
// to stderr, --metrics=<file.jsonl> writes the machine-readable event stream,
// --trace=<file.json> records Chrome-trace spans (open in chrome://tracing).
// Kernels: --backend=scalar|avx2|auto selects the SIMD backend (default:
// BDLFI_BACKEND env, else scalar). Campaign checkpoints record the backend
// and --resume refuses to continue under a different one (exit 6).
// --mask-batch=K fuses K fault variants per widened forward in the batched
// multi-mask evaluation path (bit-identical to K=1; DESIGN.md §10).
// Resilience (campaign commands): --checkpoint-dir=<dir> saves an atomic
// per-round campaign checkpoint (and arms SIGINT/SIGTERM for a graceful
// stop), --resume continues bit-exactly from it, --round-timeout-ms /
// --max-chain-retries / --min-acceptance / --max-evals-per-round configure
// chain supervision (retry, then quarantine, pathological chains).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bayes/posterior_profile.h"
#include "bayes/targets.h"
#include "bench/common.h"
#include "harden/placement.h"
#include "harden/profile_export.h"
#include "harden/trainer.h"
#include "fleet/runner.h"
#include "fleet/spec.h"
#include "data/cifar_like.h"
#include "data/toy2d.h"
#include "inject/campaign.h"
#include "inject/random_fi.h"
#include "mcmc/checkpoint.h"
#include "mcmc/runner.h"
#include "obs/stream.h"
#include "nn/builders.h"
#include "nn/checkpoint.h"
#include "train/trainer.h"
#include "util/csv.h"
#include "util/log.h"

using namespace bdlfi;

namespace {

// Flag parsing and observability wiring are shared with the benches
// (bench::Flags / bench::ObsSession / bench::parse_campaign_flags); the
// subcommand at argv[1] carries no "--" prefix so the parser skips it.
using bench::Flags;

struct Subject {
  nn::Network net;
  data::Dataset train;
  data::Dataset test;
};

Subject build_subject(const Flags& args) {
  const std::string model = args.get("model", "mlp");
  const auto data_seed = static_cast<std::uint64_t>(
      args.get("data-seed", std::int64_t{11}));
  const auto init_seed = static_cast<std::uint64_t>(
      args.get("init-seed", std::int64_t{12}));
  util::Rng data_rng{data_seed};
  util::Rng init_rng{init_seed};
  Subject subject;
  if (model == "mlp") {
    data::Dataset all = data::make_two_moons(
        args.get("samples", std::size_t{800}), 0.08, data_rng);
    data::Split split = data::split_dataset(all, 0.75, data_rng);
    subject.net = nn::make_mlp({2, 16, 32, 2}, init_rng);
    subject.train = std::move(split.train);
    subject.test = std::move(split.test);
  } else if (model == "resnet") {
    data::CifarLikeConfig dc;
    dc.samples_per_class = args.get("samples-per-class", std::size_t{60});
    dc.image_size = args.get("image-size", std::int64_t{16});
    data::Dataset all = data::make_cifar_like(dc, data_rng);
    data::Split split = data::split_dataset(all, 0.8, data_rng);
    nn::ResNetConfig nc;
    nc.width_multiplier = args.get("width", 0.125);
    subject.net = nn::make_resnet18(nc, init_rng);
    subject.train = std::move(split.train);
    subject.test = std::move(split.test);
  } else {
    std::fprintf(stderr, "unknown --model=%s (mlp|resnet)\n", model.c_str());
    std::exit(2);
  }
  return subject;
}

Subject load_subject(const Flags& args) {
  Subject subject = build_subject(args);
  const std::string ckpt = args.get("ckpt", "");
  if (ckpt.empty()) {
    std::fprintf(stderr, "--ckpt=<file> is required\n");
    std::exit(2);
  }
  if (!nn::load_checkpoint(subject.net, ckpt)) {
    std::fprintf(stderr,
                 "failed to load %s (did --model/--width/--image-size match "
                 "the train run?)\n",
                 ckpt.c_str());
    std::exit(1);
  }
  return subject;
}

bayes::BayesianFaultNetwork make_bfn(Subject& subject, const Flags& args) {
  fault::AvfProfile profile = fault::AvfProfile::uniform();
  const std::string avf = args.get("avf", "uniform");
  if (avf == "exponent") profile = fault::AvfProfile::exponent_weighted(4.0);
  if (avf == "mantissa") profile = fault::AvfProfile::mantissa_only();
  if (avf == "sign-exponent") {
    profile = fault::AvfProfile::sign_exponent_only();
  }
  // ABFT is a deployment property of the subject network: set it before the
  // BayesianFaultNetwork clones, so every chain replica checks (and the
  // campaign fingerprint records the mode).
  tensor::abft::Config abft;
  const std::string abft_flag = args.get("abft", "off");
  if (!tensor::abft::parse_mode(abft_flag, &abft.mode)) {
    std::fprintf(stderr, "unknown --abft=%s (off|detect|correct)\n",
                 abft_flag.c_str());
    std::exit(2);
  }
  subject.net.set_abft(abft);
  // Eval-mode conv+BN fusion (--fuse) folds BatchNorm into the adjacent conv
  // inside residual blocks for throughput. Fused arithmetic rounds
  // differently from the unfused plan (within the documented tolerance;
  // DESIGN.md §13), so it is opt-in and --no-fuse always wins — the default
  // stays bit-exact with the sequential reference. Set before the
  // BayesianFaultNetwork clones so every chain replica inherits it.
  subject.net.set_eval_fusion(args.get("fuse", std::int64_t{0}) != 0 &&
                              args.get("no-fuse", std::int64_t{0}) == 0);
  bayes::TargetSpec spec = bayes::TargetSpec::all_parameters();
  const std::string target = args.get("target", "params");
  if (target == "compute") {
    spec = bayes::TargetSpec::compute_only();
  } else if (target != "params") {
    std::fprintf(stderr, "unknown --target=%s (params|compute)\n",
                 target.c_str());
    std::exit(2);
  }
  const std::string layer = args.get("layer", "");
  if (!layer.empty()) spec = bayes::TargetSpec::single_layer(layer);
  return bayes::BayesianFaultNetwork(subject.net, spec, profile,
                                     subject.test.inputs,
                                     subject.test.labels);
}

mcmc::RunnerConfig runner_from(const Flags& args, bench::ObsSession& session) {
  mcmc::RunnerConfig runner;
  runner.num_chains = args.get("chains", std::size_t{4});
  runner.mh.samples = args.get("samples-per-chain", std::size_t{100});
  runner.mh.burn_in = args.get("burn-in", std::size_t{30});
  runner.mh.thin = args.get("thin", std::size_t{5});
  runner.mh.mask_batch = args.get("mask-batch", runner.mh.mask_batch);
  runner.gibbs.mask_batch = args.get("mask-batch", runner.gibbs.mask_batch);
  runner.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));
  bench::parse_campaign_flags(args, session, runner);
  return runner;
}

/// Shared degradation epilogue for campaign commands: per-chain incidents on
/// stderr, non-zero exit when the campaign result cannot be trusted.
int degradation_exit_code(const mcmc::CampaignResult& result, int ok_code) {
  if (result.degraded) {
    std::fprintf(stderr, "DEGRADED: %zu chain(s) quarantined\n",
                 result.chains_quarantined);
    for (const auto& h : result.health) {
      if (h.status != mcmc::ChainStatus::quarantined) continue;
      std::fprintf(stderr, "  chain %zu: %s at round %zu (%zu retries)\n",
                   h.chain, h.last_failure.c_str(), h.quarantined_round,
                   h.retries);
    }
  }
  if (result.failed) {
    std::fprintf(stderr, "campaign FAILED: %s\n", result.fail_reason.c_str());
    return 4;
  }
  return ok_code;
}

int cmd_train(const Flags& args) {
  Subject subject = build_subject(args);
  train::TrainConfig config;
  config.epochs = args.get("epochs", args.get("model", "mlp") == "mlp"
                                         ? std::size_t{40}
                                         : std::size_t{5});
  config.batch_size = args.get("batch", std::size_t{32});
  config.lr = args.get("lr", args.get("model", "mlp") == "mlp" ? 0.05 : 0.02);
  config.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{13}));
  config.verbose = true;
  const auto result =
      train::fit(subject.net, subject.train, subject.test, config);
  std::printf("final test accuracy: %.2f%%\n",
              100.0 * result.final_test_accuracy);
  const std::string out = args.get("out", "golden.ckpt");
  if (!nn::save_checkpoint(subject.net, out)) return 1;
  std::printf("golden weights written to %s\n", out.c_str());
  return 0;
}

int cmd_sweep(const Flags& args, bench::ObsSession& session) {
  Subject subject = load_subject(args);
  auto bfn = make_bfn(subject, args);
  const auto ps = inject::log_space(args.get("p-lo", 1e-5),
                                    args.get("p-hi", 1e-1),
                                    args.get("points", std::size_t{9}));
  const auto sweep =
      inject::run_bdlfi_sweep(bfn, ps, runner_from(args, session));
  util::Table table({"p", "mean_error_%", "q05", "q95", "accept", "rhat",
                     "ess", "quar"});
  for (const auto& pt : sweep.points) {
    table.row().col(pt.p).col(pt.mean_error).col(pt.q05).col(pt.q95)
        .col(pt.stats.acceptance_rate).col(pt.stats.rhat).col(pt.stats.ess)
        .col(pt.stats.chains_quarantined);
  }
  std::printf("golden error: %.2f%%\n%s", sweep.golden_error,
              table.to_text().c_str());
  if (sweep.interrupted) {
    std::fprintf(stderr, "sweep interrupted: %zu/%zu grid points done\n",
                 sweep.points.size(), ps.size());
  }
  const std::string out = args.get("out", "");
  if (!out.empty() && !table.write_csv(out)) return 1;
  return sweep.interrupted ? 5 : 0;
}

int cmd_layers(const Flags& args, bench::ObsSession& session) {
  Subject subject = load_subject(args);
  const auto points = inject::run_layer_campaign(
      subject.net, subject.test.inputs, subject.test.labels,
      fault::AvfProfile::uniform(), args.get("p", 1e-3),
      runner_from(args, session), args.get("dose", 0.0));
  util::Table table({"idx", "layer", "kind", "params", "mean_error_%",
                     "deviation_%"});
  for (const auto& pt : points) {
    table.row().col(pt.layer_index).col(pt.layer_name).col(pt.layer_kind)
        .col(static_cast<std::size_t>(pt.layer_params)).col(pt.mean_error)
        .col(pt.mean_deviation);
  }
  std::printf("%s", table.to_text().c_str());
  return 0;
}

int cmd_random(const Flags& args) {
  Subject subject = load_subject(args);
  auto bfn = make_bfn(subject, args);
  inject::RandomFiConfig config;
  config.injections = args.get("injections", std::size_t{1000});
  config.mask_batch = args.get("mask-batch", config.mask_batch);
  config.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));
  const auto result =
      inject::run_random_fi(bfn, args.get("p", 1e-3), config);
  std::printf("random FI @ p=%.3g over %zu injections:\n"
              "  mean error %.3f%% (golden %.3f%%), ci95 ±%.3f\n"
              "  deviation %.3f%%  SDC %.3f%%  detected %.3f%%\n"
              "  outcomes: masked=%zu sdc=%zu detected=%zu corrected=%zu\n"
              "  detection coverage %.1f%%  SDC rate %.1f%%\n",
              args.get("p", 1e-3), result.injections, result.mean_error,
              bfn.golden_error(), result.ci95_halfwidth,
              result.mean_deviation, result.mean_sdc, result.mean_detected,
              result.outcome_masked, result.outcome_sdc,
              result.outcome_detected, result.outcome_corrected,
              100.0 * result.detection_coverage, 100.0 * result.sdc_rate);
  return 0;
}

int cmd_complete(const Flags& args, bench::ObsSession& session) {
  Subject subject = load_subject(args);
  auto bfn = make_bfn(subject, args);
  const double p = args.get("p", 1e-3);
  mcmc::TargetFactory factory = [p](bayes::BayesianFaultNetwork& net) {
    return std::make_unique<bayes::PriorTarget>(net, p);
  };
  mcmc::CompletenessCriterion criterion;
  criterion.rhat_threshold = args.get("rhat", 1.05);
  criterion.mean_rel_tol = args.get("tol", 0.05);
  criterion.max_rounds = args.get("max-rounds", std::size_t{8});
  const mcmc::RunnerConfig runner = runner_from(args, session);
  if (session.reporter() != nullptr) {
    // Stamp every event with the campaign's config fingerprint (the same id
    // checkpoints carry), so concurrent streams merge unambiguously in the
    // dashboard and a resumed run keeps its identity.
    session.reporter()->set_campaign_id(
        obs::hex64(mcmc::campaign_fingerprint(bfn, runner, p)));
    session.reporter()->begin(p, runner.num_chains, runner.mh.samples,
                              criterion.max_rounds);
  }
  const auto result =
      mcmc::run_until_complete(bfn, factory, p, runner, criterion);
  if (session.reporter() != nullptr) {
    session.reporter()->end(result.converged, result.rounds);
  }
  if (result.resume_rejected) {
    std::fprintf(stderr, "resume rejected: %s\n",
                 result.final_result.fail_reason.c_str());
    return result.backend_mismatch ? 6 : 4;
  }
  if (result.resumed_from_round > 0) {
    std::printf("resumed from checkpoint: %zu round(s) already done\n",
                result.resumed_from_round);
  }
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    const auto& r = result.trajectory[i];
    std::printf("round %zu: samples=%zu mean=%.3f%% rhat=%.4f ess=%.0f\n",
                i + 1, r.cumulative_samples, r.mean_error, r.rhat, r.ess);
  }
  std::printf("campaign %s after %zu rounds\n",
              result.converged ? "COMPLETE" : "NOT CONVERGED", result.rounds);
  if (result.interrupted) {
    std::fprintf(stderr,
                 "interrupted after %zu complete round(s); continue with "
                 "--resume --checkpoint-dir=%s\n",
                 result.rounds, runner.checkpoint_dir.c_str());
    return 5;
  }
  return degradation_exit_code(result.final_result,
                               result.converged ? 0 : 3);
}

int cmd_harden(const Flags& args, bench::ObsSession& session) {
  Subject subject = load_subject(args);
  const double p = args.get("p", 1e-4);

  // Profile acquisition: reuse a saved one (--profile) or run a fresh
  // deviation-tempered campaign with retained-mask recording and summarize it.
  bayes::PosteriorProfile profile;
  const std::string profile_in = args.get("profile", "");
  if (!profile_in.empty()) {
    std::string error;
    auto loaded = bayes::PosteriorProfile::load(profile_in, &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "--profile: %s\n", error.c_str());
      return 1;
    }
    profile = std::move(*loaded);
    std::printf("posterior profile loaded from %s (%zu samples, %zu flips)\n",
                profile_in.c_str(), profile.samples(), profile.total_flips());
  } else {
    auto bfn = make_bfn(subject, args);
    mcmc::RunnerConfig runner = runner_from(args, session);
    runner.mh.record_masks = true;
    runner.gibbs.record_masks = true;
    const double lambda = args.get("lambda", 0.05);
    mcmc::TargetFactory factory =
        [p, lambda](bayes::BayesianFaultNetwork& net) {
          return std::make_unique<bayes::DeviationTemperedTarget>(net, p,
                                                                  lambda);
        };
    mcmc::CompletenessCriterion criterion;
    criterion.rhat_threshold = args.get("rhat", 1.05);
    criterion.mean_rel_tol = args.get("tol", 0.05);
    criterion.max_rounds = args.get("max-rounds", std::size_t{4});
    const auto result =
        mcmc::run_until_complete(bfn, factory, p, runner, criterion);
    if (result.final_result.failed) {
      std::fprintf(stderr, "campaign FAILED: %s\n",
                   result.final_result.fail_reason.c_str());
      return 4;
    }
    profile = harden::summarize_campaign(result.final_result, bfn.space());
    std::printf("posterior profile: %zu retained masks, %zu flips "
                "attributed\n",
                profile.samples(), profile.total_flips());
  }
  const std::string profile_out = args.get("profile-out", "");
  if (!profile_out.empty()) {
    if (!profile.save(profile_out)) {
      std::fprintf(stderr, "cannot write %s\n", profile_out.c_str());
      return 1;
    }
    std::printf("posterior profile written to %s\n", profile_out.c_str());
  }

  // Fault-aware fine-tuning in place; Ctrl-C stops at a batch boundary and
  // the partial result is still saved (exit 5, like interrupted campaigns).
  util::install_interrupt_handlers();
  harden::FaultAwareConfig hcfg;
  hcfg.base.epochs = args.get("tune-epochs", std::size_t{30});
  hcfg.base.batch_size = args.get("batch", std::size_t{32});
  hcfg.base.lr = args.get("tune-lr", 0.02);
  hcfg.base.seed =
      static_cast<std::uint64_t>(args.get("tune-seed", std::int64_t{183}));
  hcfg.inject_prob = args.get("inject-prob", 0.7);
  hcfg.max_flips = args.get("max-flips", std::size_t{2});
  harden::FaultAwareTrainer trainer(subject.net, profile, hcfg);
  const auto tune = trainer.run(subject.train, subject.test);
  std::printf("fault-aware fine-tune: %zu epochs, %zu batches injected "
              "(%zu flips), %zu updates skipped, %zu clipped, test acc "
              "%.2f%%\n",
              tune.train.history.size(), tune.batches_injected,
              tune.flips_injected, tune.updates_skipped, tune.updates_clipped,
              100.0 * tune.train.final_test_accuracy);

  // Budgeted protection placement: report the plan and the frontier. The
  // checkpoint stores the fine-tuned weights only — guards/ABFT are a
  // deployment-time transform (harden::apply_plan), not weight state.
  const double budget = args.get("budget", 0.0);
  if (budget > 0.0) {
    const auto plan = harden::place_protection(profile, subject.net, budget);
    std::printf("protection plan @ budget %.2f: coverage %.1f%% of posterior "
                "mass, est. overhead %.1f%%\n",
                budget, 100.0 * plan.coverage, 100.0 * plan.overhead);
    for (const auto& c : plan.selected) {
      std::printf("  %-12s layer %zu (%s): mass %.3f, overhead %.2f\n",
                  harden::protection_name(c.kind), c.layer, c.name.c_str(),
                  c.benefit, c.overhead);
    }
  }

  const std::string out = args.get("out", "hardened.ckpt");
  if (!nn::save_checkpoint(subject.net, out)) return 1;
  std::printf("hardened weights written to %s\n", out.c_str());
  if (tune.train.interrupted) {
    std::fprintf(stderr, "fine-tune interrupted: partial result saved\n");
    return 5;
  }
  return 0;
}

int cmd_fleet(const Flags& args, const std::string& spec_path) {
  if (spec_path.empty()) {
    std::fprintf(stderr,
                 "usage: bdlfi fleet <campaigns.json> [--out=DIR] [--resume]\n"
                 "                   [--workers=N] [--poll-ms=N] [--quiet]\n");
    return 2;
  }
  std::string error;
  auto spec = fleet::load_fleet_spec(spec_path, &error);
  if (!spec.has_value()) {
    std::fprintf(stderr, "fleet spec: %s\n", error.c_str());
    return 2;
  }
  fleet::FleetOptions opts;
  opts.out_dir = args.get("out", "fleet_out");
  opts.resume = args.get("resume", std::int64_t{0}) != 0;
  opts.workers = args.get("workers", std::size_t{0});
  opts.poll_interval_ms = args.get("poll-ms", 50.0);
  // Fault-injection knob for the fleet itself (exercised by the ctest smoke
  // chain): SIGKILL each campaign's worker once per campaign at this round,
  // proving kill/resume equivalence end to end.
  opts.chaos_kill_round = args.get("chaos-kill-round", std::size_t{0});
  opts.quiet = args.get("quiet", std::int64_t{0}) != 0;
  const fleet::FleetResult result = fleet::run_fleet(*spec, opts);
  std::printf("fleet %s: %zu completed, %zu not converged, %zu quarantined%s\n",
              result.interrupted ? "INTERRUPTED" : "done", result.completed,
              result.not_converged, result.quarantined,
              result.interrupted ? " (continue with --resume)" : "");
  std::printf("results under %s (follow live: bdlfi_dash --follow --dir=%s)\n",
              opts.out_dir.c_str(), opts.out_dir.c_str());
  return result.exit_code();
}

void usage() {
  std::fprintf(
      stderr,
      "bdlfi <command> [--flags]\n"
      "  train     train a golden network    (--model=mlp|resnet --out=F)\n"
      "  sweep     error vs flip probability (--ckpt=F --p-lo --p-hi)\n"
      "  layers    per-layer campaign        (--ckpt=F --p [--dose])\n"
      "  random    traditional random FI     (--ckpt=F --p --injections)\n"
      "  complete  run until MCMC-mixing completeness (--ckpt=F --p)\n"
      "  harden    posterior-guided hardening loop: campaign -> profile ->\n"
      "            fault-aware fine-tune -> budgeted protection plan\n"
      "            (--ckpt=F --p [--out=hardened.ckpt --budget=0.15\n"
      "            --tune-epochs --inject-prob --profile=F.json\n"
      "            --profile-out=F.json])\n"
      "  fleet     run a JSON campaign spec across crash-supervised worker\n"
      "            processes (bdlfi fleet campaigns.json --out=DIR\n"
      "            [--resume --workers=N --quiet])\n"
      "common: --model --width --image-size --data-seed --avf=uniform|"
      "exponent|mantissa|sign-exponent --layer=<name>\n"
      "        --target=params|compute (weight-memory faults vs transient\n"
      "          MAC-output faults) --abft=off|detect|correct (checksummed\n"
      "          GEMM/conv kernels: flag or repair corrupted output rows)\n"
      "kernels:       --backend=scalar|avx2|auto (SIMD kernel backend;\n"
      "                 default: BDLFI_BACKEND env, else scalar)\n"
      "               --mask-batch=K (fault variants fused per widened\n"
      "                 forward; bit-identical to K=1, default 8)\n"
      "               --fuse / --no-fuse (eval-mode conv+BN folding inside\n"
      "                 residual blocks; off by default — fused rounding\n"
      "                 differs from the bit-exact unfused plan)\n"
      "observability: --progress (live per-round health on stderr, with\n"
      "                 EWMA evals/sec and wall-clock ETA)\n"
      "               --metrics=<file.jsonl> (machine-readable event stream;\n"
      "                 watch live with bdlfi_dash --follow <file.jsonl>...)\n"
      "               --fsync-metrics (fsync the event stream per event)\n"
      "               --trace=<file.json> (Chrome trace; chrome://tracing)\n"
      "resilience:    --checkpoint-dir=<dir> (atomic per-round checkpoint;\n"
      "                 SIGINT/SIGTERM stop gracefully) --resume\n"
      "               --round-timeout-ms=N --max-chain-retries=N\n"
      "               --min-acceptance=X --max-evals-per-round=N\n"
      "               --retry-backoff-ms=N\n"
      "exit codes: 0 ok, 2 bad usage/backend, 3 not converged, "
      "4 failed/rejected,\n"
      "            5 interrupted, 6 resume/backend mismatch\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const Flags args(argc, argv);
  const std::string cmd = argv[1];
  // One strict resolution up front for every command (flag beats
  // BDLFI_BACKEND beats scalar): train/random previously ignored --backend
  // entirely, silently producing scalar artifacts from an avx2 request.
  // parse_campaign_flags re-resolves for the campaign commands, which is
  // idempotent. Fleet workers re-resolve strictly from their campaign spec.
  const tensor::backend::Resolution backend =
      tensor::backend::resolve(args.get("backend", ""));
  if (!backend.ok) {
    std::fprintf(stderr, "--backend: %s\n", backend.error.c_str());
    return 2;
  }
  int rc = 2;
  if (cmd == "fleet") {
    // The spec file rides as a positional argument right after the command.
    const std::string spec_path =
        (argc > 2 && argv[2][0] != '-') ? argv[2] : args.get("spec", "");
    return cmd_fleet(args, spec_path);
  }
  if (cmd == "train" || cmd == "sweep" || cmd == "layers" || cmd == "random" ||
      cmd == "complete" || cmd == "harden") {
    bench::ObsSession session(args, "bdlfi " + cmd);
    if (cmd == "train") rc = cmd_train(args);
    if (cmd == "sweep") rc = cmd_sweep(args, session);
    if (cmd == "layers") rc = cmd_layers(args, session);
    if (cmd == "random") rc = cmd_random(args);
    if (cmd == "complete") rc = cmd_complete(args, session);
    if (cmd == "harden") rc = cmd_harden(args, session);
    session.finish();
    return rc;
  }
  usage();
  return 2;
}
